(* In-memory tables.

   The authoritative representation is a row store (an appendable vector of
   value arrays) so that INSERT stays cheap.  A columnar projection — typed
   arrays per column — is built on demand and cached; any write invalidates
   the cache.  Scan operators choose the representation they want, which is
   exactly the "data layout is an algorithm choice" knob that experiment E6
   measures. *)

module Vec = Quill_util.Vec

(* A write-footprint tracker, attached to the copy-on-write clone a
   transaction mutates.  It records *which base rows* (rows that existed
   at snapshot time) the transaction touched, at chunk granularity —
   [base_rows] never moves, so chunk indices are stable against the
   snapshot no matter how many rows the transaction appends after them.
   Appends are summarized by a flag (they occupy indices >= [base_rows]
   and cannot collide with any concurrent transaction's *base* rows);
   structural rewrites (deletes) degrade to a whole-table footprint
   because they shift every index after the removed row. *)
type tracker = {
  base_rows : int;  (** committed row count at copy time *)
  chunk_rows : int;  (** footprint granularity, rows per chunk *)
  touched : (int, unit) Hashtbl.t;  (** chunk indices with in-place writes *)
  mutable appended : bool;  (** pushed rows past [base_rows] *)
  mutable whole : bool;  (** row identity not preserved: treat as all rows *)
}

(** Rows per conflict-detection chunk for stores that do not pick their
    own size.  Read once per store at creation time (and by
    {!cow_copy_tracked} when no [?chunk_rows] is passed) — never at
    validation time — so tests and benchmarks can force many-chunk
    tables without millions of rows, and changing it mid-flight cannot
    make a live store's new trackers incommensurable with the chunk
    stamps it already holds. *)
let default_chunk_rows = ref 1024

type t = {
  name : string;
  schema : Schema.t;
  rows : Value.t array Vec.t;
  mutable columnar : Column.t array option;
  mutable tracker : tracker option;
}

(** [create ~name schema] returns an empty table. *)
let create ~name schema =
  { name; schema; rows = Vec.create ~dummy:[||]; columnar = None; tracker = None }

(** [name t] is the table's name. *)
let name t = t.name

(** [schema t] is the table's schema. *)
let schema t = t.schema

(** [row_count t] is the number of stored rows. *)
let row_count t = Vec.length t.rows

let check_row t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert: arity mismatch (%d vs %d)" (Array.length row)
         (Schema.arity t.schema));
  Array.iteri
    (fun i v ->
      let c = Schema.column t.schema i in
      match v with
      | Value.Null ->
          if not c.Schema.nullable then
            invalid_arg (Printf.sprintf "Table.insert: NULL in NOT NULL column %s" c.Schema.name)
      | v ->
          let vt = Value.type_of v in
          let ok =
            vt = c.Schema.dtype
            || (c.Schema.dtype = Value.Float_t && vt = Value.Int_t)
          in
          if not ok then
            invalid_arg
              (Printf.sprintf "Table.insert: type mismatch in column %s (%s vs %s)"
                 c.Schema.name (Value.dtype_name vt) (Value.dtype_name c.Schema.dtype)))
    row

(* Widen Int literals into FLOAT columns so stored rows are uniformly
   typed. *)
let widen t row =
  Array.mapi
    (fun i v ->
      match (v, (Schema.column t.schema i).Schema.dtype) with
      | Value.Int x, Value.Float_t -> Value.Float (Float.of_int x)
      | v, _ -> v)
    row

(** [insert t row] appends [row], checking arity, types and NOT NULL.
    Int values are widened to float in FLOAT columns. *)
let insert t row =
  check_row t row;
  let row = widen t row in
  Vec.push t.rows row;
  (match t.tracker with Some tr -> tr.appended <- true | None -> ());
  t.columnar <- None

(** [insert_all t rows] appends many rows. *)
let insert_all t rows = List.iter (insert t) rows

(** [get_row t i] returns row [i] (the caller must not mutate it). *)
let get_row t i = Vec.get t.rows i

(** [get t i j] reads the value at row [i], column [j]. *)
let get t i j = (Vec.get t.rows i).(j)

(** [rows t] exposes the row store for tuple-at-a-time scans. *)
let rows t = t.rows

(** [columnar t] returns (building and caching if needed) the typed columnar
    projection of the table. *)
let columnar t =
  match t.columnar with
  | Some cols -> cols
  | None ->
      let n = row_count t in
      let cols =
        Array.init (Schema.arity t.schema) (fun j ->
            let dtype = (Schema.column t.schema j).Schema.dtype in
            let vs = Array.init n (fun i -> (Vec.get t.rows i).(j)) in
            Column.of_values dtype vs)
      in
      t.columnar <- Some cols;
      cols

(** [column t j] is column [j] of the columnar projection. *)
let column t j = (columnar t).(j)

(** [of_rows ~name schema rows] builds a table from a row list. *)
let of_rows ~name schema rows =
  let t = create ~name schema in
  insert_all t rows;
  t

(** [of_columns ~name schema cols] builds a table directly from typed
    columns (all the same length); the row store is populated lazily from
    the columns. *)
let of_columns ~name schema cols =
  let n = if Array.length cols = 0 then 0 else Column.length cols.(0) in
  Array.iter (fun c -> assert (Column.length c = n)) cols;
  let t = create ~name schema in
  for i = 0 to n - 1 do
    Vec.push t.rows (Array.map (fun c -> Column.get c i) cols)
  done;
  t.columnar <- Some cols;
  t

(** [cow_copy t] is a copy-on-write clone for MVCC writers: the row
    vector is copied shallowly (row arrays are shared — no Table mutation
    ever writes into an existing row array, [update] replaces the slot
    with a fresh array), and the columnar cache is carried over since the
    rows are identical at copy time.  Mutating the clone never affects
    the original, so committed versions can stay lock-free shared among
    concurrent readers. *)
let cow_copy t =
  {
    name = t.name;
    schema = t.schema;
    rows = Vec.copy t.rows;
    columnar = t.columnar;
    tracker = None;
  }

(** [cow_copy_tracked ?chunk_rows t] is {!cow_copy} plus a fresh
    write-footprint tracker anchored at the current row count — the
    clone a transaction mutates when commit-time conflict detection
    wants row/chunk granularity.  [chunk_rows] is the footprint
    granularity; callers attached to a store must pass that store's
    fixed size so every tracker's chunk indices are commensurable with
    the store's chunk stamps (default: {!default_chunk_rows}). *)
let cow_copy_tracked ?chunk_rows t =
  let chunk_rows =
    match chunk_rows with Some n -> max 1 n | None -> !default_chunk_rows
  in
  let c = cow_copy t in
  c.tracker <-
    Some
      {
        base_rows = row_count t;
        chunk_rows;
        touched = Hashtbl.create 8;
        appended = false;
        whole = false;
      };
  c

(** [tracker t] is the write-footprint tracker, if this is a tracked
    copy-on-write clone. *)
let tracker t = t.tracker

(** [touched_chunks tr] lists the chunk indices written in place,
    sorted. *)
let touched_chunks tr =
  Hashtbl.fold (fun c () acc -> c :: acc) tr.touched [] |> List.sort compare

(** [tracker_clean tr] is true when the transaction never actually
    mutated the table through this clone — no in-place write, no append,
    no structural rewrite. *)
let tracker_clean tr =
  (not tr.whole) && (not tr.appended) && Hashtbl.length tr.touched = 0

(** [merge ~base ours tr] installs [ours]'s footprint onto [base]
    (the *current* committed version, possibly newer than the snapshot
    [ours] was cloned from): returns a clone of [base] with [ours]'s
    touched chunks spliced in and [ours]'s appended tail re-appended.
    Only sound when commit validation has already proven the footprint
    disjoint from every version committed since the snapshot — then all
    rows of [base] below [tr.base_rows] outside the touched chunks equal
    the snapshot's, and inside a touched chunk nobody else wrote, so
    [ours]'s values are authoritative.

    Durability note: a merged install is {e not} reproducible by
    re-executing the transaction's SQL (a predicate re-run against the
    merged state could touch rows the footprint proves untouched — e.g.
    a row a concurrent committer appended), so the WAL logs merged
    commits as physical row images ({!Quill_storage.Csv.patch_of_table})
    and replay applies exactly this splice. *)
let merge ~base ours tr =
  let t = cow_copy base in
  t.columnar <- None;
  Hashtbl.iter
    (fun c () ->
      let lo = c * tr.chunk_rows in
      let hi = min tr.base_rows ((c + 1) * tr.chunk_rows) in
      for i = lo to hi - 1 do
        Vec.set t.rows i (Vec.get ours.rows i)
      done)
    tr.touched;
  for i = tr.base_rows to row_count ours - 1 do
    Vec.push t.rows (Vec.get ours.rows i)
  done;
  t

(** [retain t keep] deletes every row for which [keep row] is false;
    returns the number of rows removed. *)
let retain t keep =
  let kept = Vec.create ~dummy:[||] in
  let removed = ref 0 in
  Vec.iter
    (fun row -> if keep row then Vec.push kept row else incr removed)
    t.rows;
  if !removed > 0 then begin
    Vec.clear t.rows;
    Vec.iter (fun row -> Vec.push t.rows row) kept;
    t.columnar <- None;
    (* Deletion renumbers every later row, so per-chunk identities are
       gone: the footprint degrades to the whole table. *)
    match t.tracker with Some tr -> tr.whole <- true | None -> ()
  end;
  !removed

(** [update t ~where ~apply] replaces each row matching [where] with
    [apply row] (checked like an insert); returns the match count. *)
let update t ~where ~apply =
  let n = ref 0 in
  for i = 0 to row_count t - 1 do
    let row = Vec.get t.rows i in
    if where row then begin
      incr n;
      let row' = apply (Array.copy row) in
      check_row t row';
      let row' = widen t row' in
      Vec.set t.rows i row';
      match t.tracker with
      | Some tr when i < tr.base_rows ->
          (* In-place write to a base row: chunk joins the footprint.
             Writes at [i >= base_rows] hit rows this transaction itself
             appended — private until commit, no footprint needed. *)
          Hashtbl.replace tr.touched (i / tr.chunk_rows) ()
      | _ -> ()
    end
  done;
  if !n > 0 then t.columnar <- None;
  !n

(** [set_row t i row] replaces row [i] wholesale, checked (and widened)
    like an insert — the physical-patch replay path
    ({!Quill_storage.Csv.apply_patch}). *)
let set_row t i row =
  check_row t row;
  Vec.set t.rows i (widen t row);
  (match t.tracker with
  | Some tr when i < tr.base_rows ->
      Hashtbl.replace tr.touched (i / tr.chunk_rows) ()
  | _ -> ());
  t.columnar <- None

(** [to_row_list t] returns all rows as a list (copying). *)
let to_row_list t =
  List.init (row_count t) (fun i -> Array.copy (get_row t i))

(** [to_string ?limit t] renders the table for display. *)
let to_string ?(limit = 20) t =
  let n = min limit (row_count t) in
  let header = List.map (fun c -> c.Schema.name) (Schema.columns t.schema) in
  let body =
    List.init n (fun i ->
        Array.to_list (Array.map Value.to_string (get_row t i)))
  in
  let rendered = Quill_util.Pretty.render ~header body in
  if row_count t > n then
    rendered ^ Printf.sprintf "(%d rows, %d shown)\n" (row_count t) n
  else rendered ^ Printf.sprintf "(%d rows)\n" (row_count t)
