(* SQL values and their dynamic types.

   Dates are stored as days since 1970-01-01 (proleptic Gregorian), which
   makes date arithmetic and range predicates plain integer operations. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

type dtype = Int_t | Float_t | Str_t | Bool_t | Date_t

(** [dtype_name d] is the SQL spelling of [d]. *)
let dtype_name = function
  | Int_t -> "INT"
  | Float_t -> "FLOAT"
  | Str_t -> "TEXT"
  | Bool_t -> "BOOL"
  | Date_t -> "DATE"

(** [type_of v] returns the dtype of a non-null value. *)
let type_of = function
  | Null -> invalid_arg "Value.type_of: Null has no dtype"
  | Int _ -> Int_t
  | Float _ -> Float_t
  | Str _ -> Str_t
  | Bool _ -> Bool_t
  | Date _ -> Date_t

let is_null = function Null -> true | _ -> false

(* Civil-date conversions (Howard Hinnant's algorithms), exact over the
   whole int range we care about. *)

(** [date_of_ymd ~y ~m ~d] converts a civil date to days since epoch. *)
let date_of_ymd ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

(** [ymd_of_date days] converts days since epoch back to [(y, m, d)]. *)
let ymd_of_date days =
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

(** [days_in_month ~y ~m] is the calendar length of month [m] in year
    [y] (proleptic Gregorian leap rule). *)
let days_in_month ~y ~m =
  match m with
  | 2 -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | 4 | 6 | 9 | 11 -> 30
  | _ -> 31

(** [parse_date s] parses ["YYYY-MM-DD"]; returns [None] on malformed
    input or an impossible calendar date (bad month, day past the month's
    end, Feb 29 outside leap years). *)
let parse_date s =
  match String.split_on_char '-' s with
  | [ ys; ms; ds ] -> (
      match (int_of_string_opt ys, int_of_string_opt ms, int_of_string_opt ds) with
      | Some y, Some m, Some d
        when m >= 1 && m <= 12 && d >= 1 && d <= days_in_month ~y ~m ->
          Some (date_of_ymd ~y ~m ~d)
      | _ -> None)
  | _ -> None

(** [date_string days] renders a date value as ["YYYY-MM-DD"]. *)
let date_string days =
  let y, m, d = ymd_of_date days in
  Printf.sprintf "%04d-%02d-%02d" y m d

(** [to_string v] renders a value for display; NULL renders as ["NULL"]. *)
let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.6g" f
  | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Date d -> date_string d

(* Rank used to give a deterministic total order across types; within a
   query, mixed-type comparison is a bind-time error, so this ordering only
   matters for generic utilities. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Date _ -> 4
  | Str _ -> 5

(* Exact int/float ordering.  Rounding the int to float loses precision
   for |i| >= 2^53 — e.g. [Int (max_int - 1) < Float (2. ** 62.)] would
   come out equal.  Instead classify the float against the representable
   int range (min_int = -2^62 is exactly representable; 2^62 is not an
   int) and compare through [floor] within it. *)
let min_int_float = Float.of_int min_int

let compare_int_float x y =
  if Float.is_nan y then 1 (* floats order NaN above everything *)
  else if y < min_int_float then 1
  else if y >= -.min_int_float then -1
  else begin
    let fl = Float.floor y in
    (* |fl| <= 2^62 here, so the conversion is exact. *)
    let iy = Float.to_int fl in
    if x < iy then -1 else if x > iy then 1 else if y > fl then -1 else 0
  end

(** [compare a b] is a total order suitable for sorting: NULL sorts first,
    ints and floats compare numerically (exactly, even beyond 2^53). *)
let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> compare_int_float x y
  | Float x, Int y -> -compare_int_float y x
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | a, b -> Stdlib.compare (rank a) (rank b)

(** [equal a b] is SQL-agnostic structural equality with numeric coercion;
    [Null] equals only [Null] (3-valued logic lives in the evaluator). *)
let equal a b = compare a b = 0

(** [hash v] hashes a value consistently with [equal] (ints and equal-valued
    floats collide intentionally). *)
let hash = function
  | Null -> 0x9e3779b9
  | Int i -> Quill_util.Hashing.mix_int i
  | Float f ->
      (* The int-collision range must match [compare_int_float]'s notion
         of "equal to an int": exactly the representable int range. *)
      if Float.is_integer f && f >= min_int_float && f < -.min_int_float then
        Quill_util.Hashing.mix_int (Float.to_int f)
      else Quill_util.Hashing.hash_float f
  | Str s -> Quill_util.Hashing.hash_string s
  | Bool b -> Quill_util.Hashing.mix_int (if b then 3 else 5)
  | Date d -> Quill_util.Hashing.mix_int (d lxor 0x5bd1e995)

(** [to_float v] numeric view of a value; raises on non-numeric. *)
let to_float = function
  | Int i -> Float.of_int i
  | Float f -> f
  | Date d -> Float.of_int d
  | v -> invalid_arg ("Value.to_float: " ^ to_string v)

(** [parse dtype s] parses the textual form of a value of type [dtype];
    empty string parses as [Null]. Returns [None] on malformed input. *)
let parse dtype s =
  if s = "" then Some Null
  else
    match dtype with
    | Int_t -> Option.map (fun i -> Int i) (int_of_string_opt s)
    | Float_t -> Option.map (fun f -> Float f) (float_of_string_opt s)
    | Str_t -> Some (Str s)
    | Bool_t -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" -> Some (Bool true)
        | "false" | "f" | "0" -> Some (Bool false)
        | _ -> None)
    | Date_t -> Option.map (fun d -> Date d) (parse_date s)
