(* The write-ahead log.

   An append-only file of length-prefixed, CRC32-checksummed frames.
   Layout:

     header   "QWAL1\n"
     frame    [len : u32 LE] [crc32(payload) : u32 LE] [payload]
     payload  'S' sql-text     a statement (DML or DDL)
              'C'              commit marker for the statements since
                               the previous 'C'

   Writers buffer frames in memory ([log_statement]) and persist them in
   a single write at [commit] — group commit: the statement frame and
   its commit marker hit the file together, and fsync is batched per the
   {!sync_policy}.  A statement whose in-memory application fails is
   [rollback]ed before anything reaches the file.

   Replay scans frames from the start and yields the longest clean
   prefix of *committed* statements: it stops at the first torn frame
   (truncated length/checksum/payload — a power cut mid-write) or CRC
   mismatch (corruption), and statements appended but not followed by a
   commit marker are reported as dropped, never replayed.  Checkpoints
   do not write frames: the snapshot layer starts a fresh generation's
   log and deletes this one, which is the WAL truncation point. *)

module Metrics = Quill_obs.Metrics

let m_appends = Metrics.counter "quill.wal.appends"
let m_commits = Metrics.counter "quill.wal.commits"
let m_rollbacks = Metrics.counter "quill.wal.rollbacks"
let m_syncs = Metrics.counter "quill.wal.syncs"
let m_bytes = Metrics.counter "quill.wal.bytes"

let header = "QWAL1\n"

(** When committed frames are forced to stable storage. *)
type sync_policy =
  | Never  (** never fsync; the OS decides (fastest, weakest) *)
  | On_commit  (** fsync every commit (group commit still batches frames) *)
  | Every of int  (** fsync once per [n] commits *)

(** [policy_name p] renders a policy for the shell and metrics. *)
let policy_name = function
  | Never -> "never"
  | On_commit -> "commit"
  | Every n -> Printf.sprintf "every-%d" n

(** [policy_of_string s] parses ["never"], ["commit"] or ["every N"]. *)
let policy_of_string s =
  match String.split_on_char ' ' (String.lowercase_ascii (String.trim s)) with
  | [ "never" ] -> Some Never
  | [ "commit" ] -> Some On_commit
  | [ "every"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Some (Every n)
      | _ -> None)
  | _ -> None

type t = {
  path : string;
  mutable file : Sim_fs.t option;  (* None after [close] *)
  mutable policy : sync_policy;
  pending : Buffer.t;  (* frames of the statement being executed *)
  mutable pending_stmts : int;
  mutable commits_since_sync : int;
  mutable appended_stmts : int;  (* committed statements this session *)
}

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let add_frame buf payload =
  put_u32 buf (String.length payload);
  put_u32 buf (Quill_util.Hashing.crc32 payload);
  Buffer.add_string buf payload

let handle t =
  match t.file with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Wal: %s is closed" t.path)

(** [create ?policy path] starts a fresh, empty log at [path] (replacing
    any old file) and syncs the header — a checkpoint's truncation
    point. *)
let create ?(policy = On_commit) path =
  let f = Sim_fs.create path in
  (try
     Sim_fs.write f header;
     Sim_fs.fsync f
   with e ->
     Sim_fs.close f;
     raise e);
  { path; file = Some f; policy; pending = Buffer.create 256; pending_stmts = 0;
    commits_since_sync = 0; appended_stmts = 0 }

(** [open_append ?policy path] opens an existing log for further
    appends (creating an empty one when missing). *)
let open_append ?(policy = On_commit) path =
  let fresh = not (Sys.file_exists path) in
  let f = Sim_fs.open_append path in
  (try if fresh then Sim_fs.write f header
   with e ->
     Sim_fs.close f;
     raise e);
  { path; file = Some f; policy; pending = Buffer.create 256; pending_stmts = 0;
    commits_since_sync = 0; appended_stmts = 0 }

(** [set_policy t p] changes when commits are fsynced. *)
let set_policy t p = t.policy <- p

(** [policy t] is the current sync policy. *)
let policy t = t.policy

(** [path t] is the log's file path. *)
let path t = t.path

(** [appended t] counts statements committed through this handle. *)
let appended t = t.appended_stmts

(** [log_statement t sql] stages a statement frame in the group-commit
    buffer.  Nothing reaches the file until {!commit}. *)
let log_statement t sql =
  ignore (handle t);
  add_frame t.pending ("S" ^ sql);
  t.pending_stmts <- t.pending_stmts + 1;
  Metrics.incr m_appends

(** [rollback t] discards staged frames (the statement failed in
    memory; it must not be replayed). *)
let rollback t =
  if t.pending_stmts > 0 then begin
    Buffer.clear t.pending;
    t.pending_stmts <- 0;
    Metrics.incr m_rollbacks
  end

(** [sync t] forces the log to stable storage now, regardless of
    policy. *)
let sync t =
  Sim_fs.fsync (handle t);
  t.commits_since_sync <- 0;
  Metrics.incr m_syncs

(** [commit t] appends a commit marker and writes the staged frames in
    one write, fsyncing per policy.  A torn write here (power cut) loses
    the whole statement — recovery sees no commit marker and drops it,
    which is correct: the client was never acknowledged. *)
let commit t =
  if t.pending_stmts > 0 then begin
    let f = handle t in
    add_frame t.pending "C";
    let frames = Buffer.contents t.pending in
    Buffer.clear t.pending;
    let stmts = t.pending_stmts in
    t.pending_stmts <- 0;
    Sim_fs.write f frames;
    t.appended_stmts <- t.appended_stmts + stmts;
    Metrics.add m_bytes (String.length frames);
    Metrics.incr m_commits;
    t.commits_since_sync <- t.commits_since_sync + 1;
    match t.policy with
    | Never -> ()
    | On_commit -> sync t
    | Every n -> if t.commits_since_sync >= n then sync t
  end

(** [close t] closes the log file (staged-but-uncommitted frames are
    discarded).  Idempotent. *)
let close t =
  match t.file with
  | None -> ()
  | Some f ->
      t.file <- None;
      Buffer.clear t.pending;
      t.pending_stmts <- 0;
      Sim_fs.close f

(* --- Replay ------------------------------------------------------------ *)

(** What a replay recovered, and where (and why) it stopped. *)
type replay = {
  statements : string list;  (** committed statements, oldest first *)
  dropped : int;  (** statements appended but never committed *)
  torn : bool;  (** the scan hit a torn/corrupt frame and stopped *)
  detail : string option;  (** human-readable reason for stopping early *)
}

(** [replay path] scans the log and returns the longest clean committed
    prefix.  A missing file replays as empty; a bad header, short frame
    or checksum mismatch stops the scan at the last good commit. *)
let replay path =
  match Sim_fs.read_file path with
  | None ->
      { statements = []; dropped = 0; torn = false;
        detail = Some (Printf.sprintf "missing WAL file %s" path) }
  | Some data ->
      let n = String.length data in
      let hlen = String.length header in
      if n < hlen || String.sub data 0 hlen <> header then
        { statements = []; dropped = 0; torn = true;
          detail = Some (Printf.sprintf "bad WAL header in %s" path) }
      else begin
        let committed = ref [] and uncommitted = ref [] in
        let torn = ref false and detail = ref None in
        let stop fmt =
          Printf.ksprintf
            (fun msg ->
              torn := true;
              detail := Some msg)
            fmt
        in
        let pos = ref hlen in
        (try
           while !pos < n do
             if n - !pos < 8 then begin
               stop "torn frame header at byte %d (%d trailing bytes)" !pos (n - !pos);
               raise Exit
             end;
             let len = get_u32 data !pos in
             let crc = get_u32 data (!pos + 4) in
             if len > n - !pos - 8 then begin
               stop "torn frame at byte %d (payload %d bytes, %d available)" !pos len
                 (n - !pos - 8);
               raise Exit
             end;
             if len = 0 then begin
               stop "empty frame at byte %d" !pos;
               raise Exit
             end;
             if Quill_util.Hashing.crc32 ~pos:(!pos + 8) ~len data <> crc then begin
               stop "checksum mismatch at byte %d" !pos;
               raise Exit
             end;
             (match data.[!pos + 8] with
             | 'S' -> uncommitted := String.sub data (!pos + 9) (len - 1) :: !uncommitted
             | 'C' ->
                 committed := !uncommitted @ !committed;
                 uncommitted := []
             | c ->
                 stop "unknown frame type %C at byte %d" c !pos;
                 raise Exit);
             pos := !pos + 8 + len
           done
         with Exit -> ());
        { statements = List.rev !committed; dropped = List.length !uncommitted;
          torn = !torn; detail = !detail }
      end
