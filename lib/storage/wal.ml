(* The write-ahead log.

   An append-only file of length-prefixed, CRC32-checksummed frames.
   Layout:

     header   "QWAL1\n"
     frame    [len : u32 LE] [crc32(payload) : u32 LE] [payload]
     payload  'S' sql-text     a statement (DML or DDL), auto-commit
              'C'              commit marker for the 'S' frames since
                               the previous 'C'
              'B' txn-id       transaction begin
              'X' txn-id ':' sql-text
                               a statement belonging to transaction txn-id
              'U' txn-id ':' table-name '\n' row-images
                               a physical patch of transaction txn-id:
                               row images replayed as data, not SQL —
                               logged instead of 'X' frames for commits
                               whose install merges onto a concurrently-
                               advanced table version
              'T' txn-id       transaction commit
              'A' txn-id       transaction abort (its statements must
                               never replay)

   Writers buffer frames in memory ([log_statement] and the txn-marker
   variants) and persist them in a single write at [commit]/[flush] —
   group commit: a transaction's begin, statements and commit marker hit
   the file together, and fsync is batched per the {!sync_policy}.  A
   statement whose in-memory application fails is [rollback]ed before
   anything reaches the file.  The MVCC store serializes commits, so a
   committed transaction's frames are always contiguous on disk, but
   replay does not rely on that: it reassembles transactions by id.

   Replay scans frames from the start and yields the longest clean
   prefix of *committed* entries — SQL statements to re-execute plus
   physical patches to apply as data (auto-commit groups and committed
   transactions alike, in commit order): it stops at the first torn
   frame (truncated length/checksum/payload — a power cut mid-write) or
   CRC mismatch (corruption); entries appended but not committed —
   an 'S' run without its 'C', a 'B'..'X'/'U' group without its 'T', or
   an aborted transaction — are reported as dropped, never replayed.
   Checkpoints do not write frames: the snapshot layer starts a fresh
   generation's log and deletes this one, which is the WAL truncation
   point. *)

module Metrics = Quill_obs.Metrics

let m_appends = Metrics.counter "quill.wal.appends"
let m_patches = Metrics.counter "quill.wal.patches"
let m_commits = Metrics.counter "quill.wal.commits"
let m_rollbacks = Metrics.counter "quill.wal.rollbacks"
let m_syncs = Metrics.counter "quill.wal.syncs"
let m_bytes = Metrics.counter "quill.wal.bytes"

let header = "QWAL1\n"

(** When committed frames are forced to stable storage. *)
type sync_policy =
  | Never  (** never fsync; the OS decides (fastest, weakest) *)
  | On_commit  (** fsync every commit (group commit still batches frames) *)
  | Every of int  (** fsync once per [n] commits *)

(** [policy_name p] renders a policy for the shell and metrics. *)
let policy_name = function
  | Never -> "never"
  | On_commit -> "commit"
  | Every n -> Printf.sprintf "every-%d" n

(** [policy_of_string s] parses ["never"], ["commit"] or ["every N"]. *)
let policy_of_string s =
  match String.split_on_char ' ' (String.lowercase_ascii (String.trim s)) with
  | [ "never" ] -> Some Never
  | [ "commit" ] -> Some On_commit
  | [ "every"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Some (Every n)
      | _ -> None)
  | _ -> None

type t = {
  path : string;
  mutable file : Sim_fs.t option;  (* None after [close] *)
  mutable policy : sync_policy;
  pending : Buffer.t;  (* frames of the statement being executed *)
  mutable pending_stmts : int;
  mutable commits_since_sync : int;
  mutable appended_stmts : int;  (* committed statements this session *)
}

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let add_frame buf payload =
  put_u32 buf (String.length payload);
  put_u32 buf (Quill_util.Hashing.crc32 payload);
  Buffer.add_string buf payload

let handle t =
  match t.file with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Wal: %s is closed" t.path)

(** [create ?policy path] starts a fresh, empty log at [path] (replacing
    any old file) and syncs the header — a checkpoint's truncation
    point. *)
let create ?(policy = On_commit) path =
  let f = Sim_fs.create path in
  (try
     Sim_fs.write f header;
     Sim_fs.fsync f
   with e ->
     Sim_fs.close f;
     raise e);
  { path; file = Some f; policy; pending = Buffer.create 256; pending_stmts = 0;
    commits_since_sync = 0; appended_stmts = 0 }

(** [open_append ?policy path] opens an existing log for further
    appends (creating an empty one when missing). *)
let open_append ?(policy = On_commit) path =
  let fresh = not (Sys.file_exists path) in
  let f = Sim_fs.open_append path in
  (try if fresh then Sim_fs.write f header
   with e ->
     Sim_fs.close f;
     raise e);
  { path; file = Some f; policy; pending = Buffer.create 256; pending_stmts = 0;
    commits_since_sync = 0; appended_stmts = 0 }

(** [set_policy t p] changes when commits are fsynced. *)
let set_policy t p = t.policy <- p

(** [policy t] is the current sync policy. *)
let policy t = t.policy

(** [path t] is the log's file path. *)
let path t = t.path

(** [appended t] counts statements committed through this handle. *)
let appended t = t.appended_stmts

(** [log_statement t sql] stages an auto-commit statement frame in the
    group-commit buffer.  Nothing reaches the file until {!commit}. *)
let log_statement t sql =
  ignore (handle t);
  add_frame t.pending ("S" ^ sql);
  t.pending_stmts <- t.pending_stmts + 1;
  Metrics.incr m_appends

(* --- Transaction frames ------------------------------------------------- *)

(** [log_txn_begin t ~txn] stages a transaction-begin marker. *)
let log_txn_begin t ~txn =
  ignore (handle t);
  add_frame t.pending ("B" ^ string_of_int txn)

(** [log_txn_statement t ~txn sql] stages one statement of transaction
    [txn]. *)
let log_txn_statement t ~txn sql =
  ignore (handle t);
  add_frame t.pending (Printf.sprintf "X%d:%s" txn sql);
  t.pending_stmts <- t.pending_stmts + 1;
  Metrics.incr m_appends

(** [log_txn_patch t ~txn ~table data] stages a physical patch frame of
    transaction [txn]: [data] is {!Quill_storage.Csv.patch_of_table}'s
    serialized row images for [table], replayed as data instead of SQL.
    The store logs these (instead of statement frames) for commits whose
    install merges a row footprint onto a concurrently-advanced
    version — the one case re-executing the SQL cannot reproduce. *)
let log_txn_patch t ~txn ~table data =
  ignore (handle t);
  add_frame t.pending (Printf.sprintf "U%d:%s\n%s" txn table data);
  t.pending_stmts <- t.pending_stmts + 1;
  Metrics.incr m_appends;
  Metrics.incr m_patches

(** [log_txn_commit t ~txn] stages the commit marker of transaction
    [txn]; pair with {!flush} to persist the whole group in one write. *)
let log_txn_commit t ~txn =
  ignore (handle t);
  add_frame t.pending ("T" ^ string_of_int txn)

(** [log_txn_abort t ~txn] stages an abort marker.  The store writes one
    (and flushes) when a commit group's fsync failed after the group —
    commit marker included — may already have reached the file: the
    client got an error, so replay must revoke the group. *)
let log_txn_abort t ~txn =
  ignore (handle t);
  add_frame t.pending ("A" ^ string_of_int txn)

(** [rollback t] discards staged frames (the statement failed in
    memory; it must not be replayed). *)
let rollback t =
  if t.pending_stmts > 0 then begin
    Buffer.clear t.pending;
    t.pending_stmts <- 0;
    Metrics.incr m_rollbacks
  end

(** [sync t] forces the log to stable storage now, regardless of
    policy. *)
let sync t =
  Sim_fs.fsync (handle t);
  t.commits_since_sync <- 0;
  Metrics.incr m_syncs

(** [flush t] writes every staged frame in one write, fsyncing per
    policy.  Used by the transaction path, whose commit marker is staged
    explicitly ({!log_txn_commit}); a torn write here (power cut) loses
    the group — recovery finds no commit marker and drops it, which is
    correct: the client was never acknowledged. *)
let flush t =
  if Buffer.length t.pending > 0 then begin
    let f = handle t in
    let frames = Buffer.contents t.pending in
    Buffer.clear t.pending;
    let stmts = t.pending_stmts in
    t.pending_stmts <- 0;
    Sim_fs.write f frames;
    t.appended_stmts <- t.appended_stmts + stmts;
    Metrics.add m_bytes (String.length frames);
    Metrics.incr m_commits;
    t.commits_since_sync <- t.commits_since_sync + 1;
    match t.policy with
    | Never -> ()
    | On_commit -> sync t
    | Every n -> if t.commits_since_sync >= n then sync t
  end

(** [commit t] appends a commit marker for the staged auto-commit
    statements and {!flush}es the group. *)
let commit t =
  if t.pending_stmts > 0 then begin
    add_frame t.pending "C";
    flush t
  end

(** [close t] closes the log file (staged-but-uncommitted frames are
    discarded).  Idempotent. *)
let close t =
  match t.file with
  | None -> ()
  | Some f ->
      t.file <- None;
      Buffer.clear t.pending;
      t.pending_stmts <- 0;
      Sim_fs.close f

(* --- Replay ------------------------------------------------------------ *)

(** One committed thing to re-apply, in commit order. *)
type entry =
  | Stmt of string  (** re-execute this SQL *)
  | Patch of { table : string; data : string }
      (** apply these row images ({!Quill_storage.Csv.apply_patch}) *)

(** What a replay recovered, and where (and why) it stopped. *)
type replay = {
  entries : entry list;  (** committed statements/patches, oldest first *)
  dropped : int;  (** entries appended but never committed *)
  torn : bool;  (** the scan hit a torn/corrupt frame and stopped *)
  detail : string option;  (** human-readable reason for stopping early *)
}

(** [replay path] scans the log and returns the longest clean committed
    prefix.  A missing file replays as empty; a bad header, short frame
    or checksum mismatch stops the scan at the last good commit. *)
let replay path =
  match Sim_fs.read_file path with
  | None ->
      { entries = []; dropped = 0; torn = false;
        detail = Some (Printf.sprintf "missing WAL file %s" path) }
  | Some data ->
      let n = String.length data in
      let hlen = String.length header in
      if n < hlen || String.sub data 0 hlen <> header then
        { entries = []; dropped = 0; torn = true;
          detail = Some (Printf.sprintf "bad WAL header in %s" path) }
      else begin
        (* Committed groups, newest first; each is (txn id if any,
           entries newest first).  Groups keep their id because an
           abort marker *after* a commit marker revokes the group: the
           store writes that sequence when the commit group reached the
           file but its fsync failed — the client got an error, so the
           group must not recover. *)
        let committed : (int option * entry list) list ref = ref [] in
        let uncommitted = ref [] in
        (* In-flight transactions by id: entries in reverse order. *)
        let open_txns : (int, entry list) Hashtbl.t = Hashtbl.create 8 in
        let dropped = ref 0 in
        let torn = ref false and detail = ref None in
        let stop fmt =
          Printf.ksprintf
            (fun msg ->
              torn := true;
              detail := Some msg)
            fmt
        in
        let txn_id payload pos_ =
          match int_of_string_opt (String.sub payload 1 (String.length payload - 1)) with
          | Some id -> id
          | None ->
              stop "malformed txn marker at byte %d" pos_;
              raise Exit
        in
        let pos = ref hlen in
        (try
           while !pos < n do
             if n - !pos < 8 then begin
               stop "torn frame header at byte %d (%d trailing bytes)" !pos (n - !pos);
               raise Exit
             end;
             let len = get_u32 data !pos in
             let crc = get_u32 data (!pos + 4) in
             if len > n - !pos - 8 then begin
               stop "torn frame at byte %d (payload %d bytes, %d available)" !pos len
                 (n - !pos - 8);
               raise Exit
             end;
             if len = 0 then begin
               stop "empty frame at byte %d" !pos;
               raise Exit
             end;
             if Quill_util.Hashing.crc32 ~pos:(!pos + 8) ~len data <> crc then begin
               stop "checksum mismatch at byte %d" !pos;
               raise Exit
             end;
             (* A statement/patch without a begin marker still opens the
                transaction — replay is lenient so a lost 'B' cannot
                strand its commit marker. *)
             let push_txn id entry =
               let sofar =
                 Option.value ~default:[] (Hashtbl.find_opt open_txns id)
               in
               Hashtbl.replace open_txns id (entry :: sofar)
             in
             (match data.[!pos + 8] with
             | 'S' ->
                 uncommitted :=
                   Stmt (String.sub data (!pos + 9) (len - 1)) :: !uncommitted
             | 'C' ->
                 committed := (None, !uncommitted) :: !committed;
                 uncommitted := []
             | 'B' ->
                 let payload = String.sub data (!pos + 8) len in
                 Hashtbl.replace open_txns (txn_id payload !pos) []
             | 'X' -> (
                 let payload = String.sub data (!pos + 8) len in
                 match String.index_opt payload ':' with
                 | None ->
                     stop "malformed txn statement at byte %d" !pos;
                     raise Exit
                 | Some colon -> (
                     match int_of_string_opt (String.sub payload 1 (colon - 1)) with
                     | None ->
                         stop "malformed txn statement at byte %d" !pos;
                         raise Exit
                     | Some id ->
                         let sql =
                           String.sub payload (colon + 1)
                             (String.length payload - colon - 1)
                         in
                         push_txn id (Stmt sql)))
             | 'U' -> (
                 let payload = String.sub data (!pos + 8) len in
                 let bad () =
                   stop "malformed patch frame at byte %d" !pos;
                   raise Exit
                 in
                 match String.index_opt payload ':' with
                 | None -> bad ()
                 | Some colon -> (
                     match
                       ( int_of_string_opt (String.sub payload 1 (colon - 1)),
                         String.index_from_opt payload colon '\n' )
                     with
                     | Some id, Some nl ->
                         let table = String.sub payload (colon + 1) (nl - colon - 1) in
                         let body =
                           String.sub payload (nl + 1) (String.length payload - nl - 1)
                         in
                         push_txn id (Patch { table; data = body })
                     | _ -> bad ()))
             | 'T' ->
                 let payload = String.sub data (!pos + 8) len in
                 let id = txn_id payload !pos in
                 let stmts =
                   Option.value ~default:[] (Hashtbl.find_opt open_txns id)
                 in
                 Hashtbl.remove open_txns id;
                 committed := (Some id, stmts) :: !committed
             | 'A' ->
                 let payload = String.sub data (!pos + 8) len in
                 let id = txn_id payload !pos in
                 dropped :=
                   !dropped
                   + List.length (Option.value ~default:[] (Hashtbl.find_opt open_txns id));
                 Hashtbl.remove open_txns id;
                 (* Revoke a commit-marked group of the same transaction:
                    its client was told the commit failed. *)
                 committed :=
                   List.filter
                     (fun (tid, stmts) ->
                       if tid = Some id then begin
                         dropped := !dropped + List.length stmts;
                         false
                       end
                       else true)
                     !committed
             | c ->
                 stop "unknown frame type %C at byte %d" c !pos;
                 raise Exit);
             pos := !pos + 8 + len
           done
         with Exit -> ());
        (* Transactions still open at the scan end never committed. *)
        Hashtbl.iter (fun _ stmts -> dropped := !dropped + List.length stmts) open_txns;
        let entries =
          List.rev !committed
          |> List.concat_map (fun (_, stmts) -> List.rev stmts)
        in
        { entries;
          dropped = !dropped + List.length !uncommitted;
          torn = !torn; detail = !detail }
      end
