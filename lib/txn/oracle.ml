(* The transaction-id / commit-timestamp oracle.

   Two monotonic counters drive snapshot isolation:

   - transaction ids are handed out lock-free at [begin] and only
     identify a transaction (in WAL frames, conflict messages, metrics);
   - commit timestamps form the serial order of committed transactions.
     They are assigned inside the store's publish critical section (the
     sharded commit path serializes installation there, even when the
     per-stripe locks let the rest of two commits overlap), so [next_ts]
     needs no CAS loop of its own — but it is still an [Atomic] so
     readers ([last_ts]) can observe it without taking the lock.

   A reader's snapshot timestamp is the last committed timestamp at
   [begin]; version visibility is then a plain integer compare. *)

type t = { next_id : int Atomic.t; last_ts : int Atomic.t }

(** [create ()] starts both counters; timestamp 0 is the empty store. *)
let create () = { next_id = Atomic.make 1; last_ts = Atomic.make 0 }

(** [fresh_id t] issues a unique transaction id (lock-free). *)
let fresh_id t = Atomic.fetch_and_add t.next_id 1

(** [last_ts t] is the latest committed timestamp — what a new snapshot
    pins. *)
let last_ts t = Atomic.get t.last_ts

(** [advance t] assigns the next commit timestamp.  Must be called with
    the store's publish lock held: timestamps are the commit order, and
    advancing inside the same critical section that installs the
    versions keeps every snapshot a consistent (ts, versions) pair. *)
let advance t =
  let ts = Atomic.get t.last_ts + 1 in
  Atomic.set t.last_ts ts;
  ts

(** [restore t ts] fast-forwards the clock after recovery so fresh
    commits continue the old order. *)
let restore t ts = if ts > Atomic.get t.last_ts then Atomic.set t.last_ts ts
