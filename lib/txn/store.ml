(* The multi-version store behind snapshot-isolation transactions.

   The store owns the *committed* state: one immutable [Table.t] version
   per table name, per-name conflict stamps, the declared
   secondary-index definitions, and — for durable stores — the shared
   write-ahead log.

   The protocol, LegoBase-style "abstraction without regret": versioning
   lives entirely behind the storage interface, so engines and kernels
   never see it.

   - [begin_txn] pins a snapshot: the current commit timestamp plus the
     current table-version pointers.  Building it takes the publish
     mutex for a pointer copy (O(#tables)), after which readers touch no
     shared mutable state at all — a reader NEVER blocks behind a
     writer, and a writer never waits for readers.
   - Writers copy-on-write: the session layer clones a table version
     before the first write ({!Quill_storage.Table.cow_copy_tracked}, a
     shallow row-vector copy carrying a write-footprint tracker) and
     mutates only the private clone.
   - [commit] is first-committer-wins at *row/chunk granularity*
     ({!Row_level}, the default): each written name carries a footprint
     — either "whole table" (DDL, drops, deletes, untracked writes) or
     the set of base-row chunks the transaction updated in place plus an
     appended-rows flag.  Validation compares the footprint against
     per-name stamps: [full_ts] (any write), [whole_ts] (whole-table
     writes) and a per-chunk timestamp vector.  Two transactions
     updating disjoint chunks of one hot table both commit — the later
     one's chunks are spliced onto the current version
     ({!Quill_storage.Table.merge}) — while DDL still conflicts at name
     granularity.  {!Name_level} restores the PR 6 behaviour (any two
     writers of a name conflict) as an ablation baseline.
   - The commit path is hash-sharded: names map to N mutex stripes and a
     transaction locks only its names' stripes, in ascending order
     (two-phase, deadlock-free), so commits touching different stripes
     proceed concurrently.  A short [publish] critical section serializes
     just the pointer installation, stamp writes and the timestamp
     advance; the WAL group write is serialized by its own [wal_lock],
     which a durable commit holds *through* its publish section so WAL
     append order always equals commit-timestamp order — replay depends
     on seeing committed transactions exactly in commit order.  Lock
     order: stripes (ascending) → wal_lock → publish; no holder of a
     later lock ever takes an earlier one.

   Recovery composes with the WAL layer: a committed transaction's
   frames hit disk atomically before the commit is acknowledged, so
   replay ({!Quill_storage.Wal.replay}) yields exactly the committed
   transactions in commit order.  Two hard corners:

   - A *merged* install (the committed version moved under a validated
     row footprint) is not reproducible by re-executing the SQL — a
     predicate re-run against the merged state could touch rows the
     footprint proves this transaction never wrote.  Such commits are
     logged as physical row-image patches
     ({!Quill_storage.Csv.patch_of_table}) instead of statement frames;
     a transaction that merges but also carries a footprint with no row
     images (DDL, drop, untracked rewrite) degrades to the pre-merge
     behaviour and aborts as a first-committer-wins conflict.
   - If a group's fsync fails *after* the frames reached the file, the
     client is told the commit failed — so an abort frame is appended to
     revoke the group at replay, keeping acknowledged == recovered.  If
     even the revocation cannot be persisted, the abort frame is
     re-staged and the store is *poisoned*: every subsequent commit
     fails until a flush carries the revocation, so no later commit can
     be acknowledged ahead of it. *)

module Table = Quill_storage.Table
module Csv = Quill_storage.Csv
module Wal = Quill_storage.Wal
module Sim_fs = Quill_storage.Sim_fs
module Metrics = Quill_obs.Metrics

exception Conflict of string
(** First-committer-wins abort: another transaction committed an
    overlapping write (same chunk, a whole-table write, or — at
    {!Name_level} — any write to a shared name) after this transaction's
    snapshot.  The loser's changes are discarded; retrying on a fresh
    snapshot is the standard reaction. *)

let m_begins = Metrics.counter "quill.txn.begins"
let m_commits = Metrics.counter "quill.txn.commits"
let m_rollbacks = Metrics.counter "quill.txn.rollbacks"
let m_conflicts = Metrics.counter "quill.txn.conflicts"

let m_row_conflicts = Metrics.counter "quill.txn.row_conflicts"
(** Conflicts detected by the chunk-granular check itself: a concurrent
    committer wrote the *same rows* (or the whole table). *)

let m_false_conflicts_avoided = Metrics.counter "quill.txn.false_conflicts_avoided"
(** Commits that name-granular validation would have aborted (the name
    was stamped after our snapshot) but row-granular validation proved
    disjoint.  The tentpole's payoff, directly measurable. *)

let m_merged_installs = Metrics.counter "quill.txn.merged_installs"
(** Installs that spliced a footprint onto a concurrently-advanced
    version instead of replacing it wholesale. *)

let m_stripe_waits = Metrics.counter "quill.txn.stripe_waits"
(** Commit-stripe acquisitions that found the stripe already held —
    lock contention on the sharded commit path. *)

let g_committed_ts = Metrics.gauge "quill.txn.committed_ts"

(** Conflict-detection granularity.  {!Row_level} (default) validates
    chunk footprints; {!Name_level} is the PR 6 table-name behaviour,
    kept as an ablation baseline for E22 and as a safety fallback. *)
type granularity = Name_level | Row_level

(* Per-name conflict stamps.  [full_ts] moves on every commit that
   wrote the name; [whole_ts] only on whole-table writes (DDL, drop,
   delete, untracked); [chunk_ts] maps chunk index -> last commit that
   updated rows of that chunk in place.  Invariant:
   whole_ts <= full_ts and every chunk_ts <= full_ts. *)
type name_stamp = {
  mutable full_ts : int;
  mutable whole_ts : int;
  chunk_ts : (int, int) Hashtbl.t;
}

(** One written name's footprint inside a transaction.  [ft_whole] marks
    structural writes (create/drop/DDL) that conflict with any other
    write; [ft_tracker] is the tracker of the session's tracked
    copy-on-write clone, recording updated chunks / appends /
    degradation to whole-table. *)
type footprint = {
  mutable ft_whole : bool;
  mutable ft_tracker : Table.tracker option;
}

type t = {
  mutable stripes : Mutex.t array;  (** commit-path shards; names hash to one *)
  publish : Mutex.t;  (** serializes installs, stamps, ts advance, snapshots *)
  wal_lock : Mutex.t;  (** serializes WAL frame-group staging + flush *)
  tables : (string, Table.t) Hashtbl.t;  (** committed versions, immutable *)
  stamps : (string, name_stamp) Hashtbl.t;
  mutable index_defs : (string * string) list;  (** committed (table, col) *)
  oracle : Oracle.t;
  mutable wal : Wal.t option;  (** shared log of a durable store *)
  mutable granularity : granularity;
  chunk_rows : int;  (** footprint granularity, fixed for the store's life *)
  mutable poisoned : string option;
      (** set when a failed commit group's revocation could not be
          persisted either: commits fail until a flush carries it *)
}

(** A pinned committed snapshot: table versions as of [ts]. *)
type snapshot = {
  ts : int;
  tables : Table.t list;
  snap_index_defs : (string * string) list;
}

(** An open transaction.  [writes] maps each name this transaction
    created, dropped or copy-on-wrote to its footprint; [stmts] the SQL
    to log, newest first.  The session layer owns the private table
    versions (its catalog view); the store only sees them at commit. *)
type txn = {
  id : int;
  snap : snapshot;
  writes : (string, footprint) Hashtbl.t;
  mutable stmts : string list;
  mutable index_ddl : bool;  (** index/DDL changed: republish defs at commit *)
}

let default_stripes = 16

(** [create ?wal ?stripes ?granularity ?chunk_rows ~tables ~index_defs ()]
    seeds a store with committed state (timestamp 0).  [tables] become
    the committed versions and must not be mutated by the caller
    afterwards.  [chunk_rows] (default {!Table.default_chunk_rows},
    read once here) is the row-footprint granularity, fixed for the
    store's life: per-chunk stamps are keyed by chunk index, so every
    tracker the store's sessions create must share one size. *)
let create ?wal ?(stripes = default_stripes) ?(granularity = Row_level)
    ?chunk_rows ~tables ~index_defs () =
  let chunk_rows =
    match chunk_rows with Some n -> max 1 n | None -> !Table.default_chunk_rows
  in
  let t =
    {
      stripes = Array.init (max 1 stripes) (fun _ -> Mutex.create ());
      publish = Mutex.create ();
      wal_lock = Mutex.create ();
      tables = Hashtbl.create 16;
      stamps = Hashtbl.create 16;
      index_defs;
      oracle = Oracle.create ();
      wal;
      granularity;
      chunk_rows;
      poisoned = None;
    }
  in
  List.iter (fun tbl -> Hashtbl.replace t.tables (Table.name tbl) tbl) tables;
  t

(** [granularity t] is the active conflict-detection granularity. *)
let granularity t = t.granularity

(** [set_granularity t g] switches conflict detection.  Only safe while
    no transaction is in flight (stamps carry over: a name- and a
    row-level stamp of the same commit agree on [full_ts]). *)
let set_granularity t g = t.granularity <- g

(** [chunk_rows t] is the store's row-footprint granularity.  Fixed at
    creation: the session layer must pass it to every
    {!Quill_storage.Table.cow_copy_tracked} so tracker chunk indices and
    the store's chunk stamps stay commensurable. *)
let chunk_rows t = t.chunk_rows

(** [stripe_count t] is the number of commit-lock shards. *)
let stripe_count t = Array.length t.stripes

(** [set_stripe_count t n] replaces the commit-lock shard array.  Only
    safe while no commit is in flight — benchmarks reconfigure a
    quiesced store for single-stripe ablation runs. *)
let set_stripe_count t n =
  t.stripes <- Array.init (max 1 n) (fun _ -> Mutex.create ())

(** [committed_ts t] is the newest commit timestamp (lock-free read). *)
let committed_ts t = Oracle.last_ts t.oracle

(** [wal t] is the store's write-ahead log, if durable. *)
let wal t = t.wal

(** [set_wal t w] swaps the log handle (checkpointing starts a fresh
    generation's log).  Call with {!locked} held or before sharing.
    Clears any poisoning: a successful checkpoint snapshots exactly the
    committed state and deletes the old log, so an unrevoked group in it
    can no longer recover. *)
let set_wal t w =
  t.wal <- w;
  t.poisoned <- None

(** [locked t f] runs [f] with every commit stripe and the publish lock
    held — quiesces commits, e.g. around a checkpoint that snapshots
    committed state and swaps the WAL. *)
let locked t f =
  let n = Array.length t.stripes in
  for i = 0 to n - 1 do
    Mutex.lock t.stripes.(i)
  done;
  Fun.protect
    ~finally:(fun () ->
      for i = n - 1 downto 0 do
        Mutex.unlock t.stripes.(i)
      done)
    (fun () -> Mutex.protect t.publish f)

(** [snapshot_unlocked t] is {!snapshot} for callers already inside
    {!locked} (e.g. a checkpoint quiescing commits). *)
let snapshot_unlocked t =
  {
    ts = Oracle.last_ts t.oracle;
    tables = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables [];
    snap_index_defs = t.index_defs;
  }

(** [snapshot t] pins the current committed state: O(#tables) pointer
    copies under the publish lock, then fully private.  Commits install
    versions and advance the timestamp inside one publish section, so a
    snapshot is always a consistent (ts, versions) pair. *)
let snapshot t = Mutex.protect t.publish (fun () -> snapshot_unlocked t)

(** [begin_txn t] opens a transaction on a fresh snapshot. *)
let begin_txn t =
  Metrics.incr m_begins;
  { id = Oracle.fresh_id t.oracle; snap = snapshot t;
    writes = Hashtbl.create 4; stmts = []; index_ddl = false }

(** [stage txn name] returns [name]'s footprint in the write set,
    creating an empty one on first touch. *)
let stage txn name =
  match Hashtbl.find_opt txn.writes name with
  | Some fp -> fp
  | None ->
      let fp = { ft_whole = false; ft_tracker = None } in
      Hashtbl.add txn.writes name fp;
      fp

(** [has_writes txn] is true once any name entered the write set. *)
let has_writes txn = Hashtbl.length txn.writes > 0

(** [write_names txn] lists the write set's names (unordered). *)
let write_names txn = Hashtbl.fold (fun name _ acc -> name :: acc) txn.writes []

(** [rollback txn] discards the transaction (the session layer drops its
    private versions; the store never saw them). *)
let rollback (_ : txn) = Metrics.incr m_rollbacks

(* --- Commit internals --------------------------------------------------- *)

let stripe_of t name = Hashtbl.hash name mod Array.length t.stripes

(* Lock the stripes covering [names], ascending (two-phase, canonical
   order — multi-table transactions cannot deadlock).  Returns the
   ordered stripe indices for the symmetric unlock. *)
let lock_stripes t names =
  let ids = List.sort_uniq compare (List.map (stripe_of t) names) in
  List.iter
    (fun i ->
      let m = t.stripes.(i) in
      if not (Mutex.try_lock m) then begin
        Metrics.incr m_stripe_waits;
        Mutex.lock m
      end)
    ids;
  ids

let unlock_stripes t ids = List.iter (fun i -> Mutex.unlock t.stripes.(i)) ids

(* A transaction's *effective* footprint for one name: either the whole
   table or a (chunks, appended, tracker) triple.  Untracked clones and
   Name_level mode degrade to whole. *)
type eff = Whole | Rows of int list * bool * Table.tracker

let effective t fp =
  if fp.ft_whole || t.granularity = Name_level then Whole
  else
    match fp.ft_tracker with
    | None -> Whole
    | Some tr ->
        if tr.Table.whole then Whole
        else Rows (Table.touched_chunks tr, tr.Table.appended, tr)

let conflict txn name kind since =
  Metrics.incr m_conflicts;
  raise
    (Conflict
       (Printf.sprintf
          "transaction %d lost %s of table %S to a first committer (snapshot \
           ts %d, committed at ts %d)"
          txn.id kind name txn.snap.ts since))

(* First-committer-wins validation of one name against its stamps.
   Caller holds the name's stripe, so the stamp record is stable. *)
let validate txn name eff (st : name_stamp) =
  match eff with
  | Whole -> if st.full_ts > txn.snap.ts then conflict txn name "the whole" st.full_ts
  | Rows (chunks, _appended, _) ->
      if st.whole_ts > txn.snap.ts then begin
        Metrics.incr m_row_conflicts;
        conflict txn name "all rows" st.whole_ts
      end;
      List.iter
        (fun c ->
          match Hashtbl.find_opt st.chunk_ts c with
          | Some s when s > txn.snap.ts ->
              Metrics.incr m_row_conflicts;
              conflict txn name (Printf.sprintf "chunk %d" c) s
          | _ -> ())
        chunks;
      (* Survived on rows where the name stamp alone would have aborted
         us: the granularity change paid off. *)
      if st.full_ts > txn.snap.ts then Metrics.incr m_false_conflicts_avoided

(* What installing one name means.  Planned outside the publish section
   (splicing rows can be real work); applied inside it (pointer swaps). *)
type install =
  | Remove  (** dropped *)
  | Put of Table.t  (** replace the committed version *)
  | Merge of Table.t  (** replace with a footprint splice (pre-computed) *)
  | Skip  (** footprint is empty: nothing was actually written *)

let plan_install txn name eff priv_opt cur =
  let lookup_snap () =
    List.find_opt (fun tb -> Table.name tb = name) txn.snap.tables
  in
  match (priv_opt : Table.t option) with
  | None -> Remove
  | Some priv -> (
      match eff with
      | Whole -> Put priv
      | Rows (chunks, appended, tr) ->
          if chunks = [] && not appended then Skip
          else (
            match cur with
            | Some cur_tbl when (match lookup_snap () with
                                 | Some snap_tbl -> cur_tbl != snap_tbl
                                 | None -> true) ->
                (* The committed version moved since our snapshot but
                   validation proved the footprints disjoint: splice our
                   chunks and tail onto the current version so the other
                   committers' rows survive. *)
                Metrics.incr m_merged_installs;
                Merge (Table.merge ~base:cur_tbl priv tr)
            | _ -> Put priv))

let is_merge = function Merge _ -> true | _ -> false

(* A poisoned store holds a commit-marked group in the file whose
   revocation is not yet durable: nothing may be acknowledged before the
   pending abort frame persists, or a crash would recover a transaction
   whose client saw an error ahead of ones that succeeded.  Flush the
   re-staged revocation and force an fsync — [Wal.flush] alone is a
   no-op on an empty buffer and may skip the sync under an [Every n]
   policy, neither of which proves the abort frame durable.  Fail the
   commit while the sync keeps failing.  Caller holds [wal_lock]. *)
let heal_poison t w =
  match t.poisoned with
  | None -> ()
  | Some msg -> (
      try
        Wal.flush w;
        Wal.sync w;
        t.poisoned <- None
      with Sim_fs.Io_error _ ->
        raise (Sim_fs.Io_error ("store poisoned (unrevoked commit group): " ^ msg)))

(* Flush the staged frame group — one write, fsynced per policy.  A torn
   write (power cut) loses the group and replay drops it: correct, the
   client was never acknowledged.  An fsync *failure* is the dangerous
   corner: the frames — commit marker included — are in the file, but
   the client is about to see an error.  Append an abort frame so replay
   revokes the group; if even that cannot be persisted, re-stage it for
   the next flush and poison the store so no later commit is
   acknowledged ahead of the revocation.  Only then re-raise.  A
   {!Sim_fs.Crash} is never caught — the machine is gone and recovery
   handles the torn tail. *)
let flush_or_revoke t w txn =
  try Wal.flush w
  with Sim_fs.Io_error _ as e ->
    (try
       Wal.log_txn_abort w ~txn:txn.id;
       Wal.flush w
     with Sim_fs.Io_error _ ->
       Wal.log_txn_abort w ~txn:txn.id;
       t.poisoned <-
         Some
           (Printf.sprintf
              "transaction %d's commit group reached the WAL but neither its \
               fsync nor its abort-frame revocation succeeded"
              txn.id));
    raise e

(* Stage the transaction's WAL frame group, flush it, and only then run
   the publish continuation [k] — still under [wal_lock], so WAL append
   order always equals commit-timestamp order (replay re-applies
   committed transactions in exactly that order).

   Statements are logged as SQL, except when some install merges onto a
   concurrently-advanced version: re-executing SQL against the merged
   state is not guaranteed to reproduce it (a predicate could touch rows
   the footprint proves this transaction never wrote), so such commits
   log physical row images per table instead — the exact splice
   {!Table.merge} installs.  Commits with nothing to log skip the lock
   entirely. *)
let wal_commit_group t txn ~plans k =
  match t.wal with
  | None -> k ()
  | Some w ->
      let merged = List.exists (fun (_, _, _, _, p) -> is_merge p) plans in
      if (not merged) && txn.stmts = [] then k ()
      else
        Mutex.protect t.wal_lock (fun () ->
            heal_poison t w;
            Wal.log_txn_begin w ~txn:txn.id;
            if not merged then
              List.iter (Wal.log_txn_statement w ~txn:txn.id) (List.rev txn.stmts)
            else
              List.iter
                (fun (name, eff, _, priv, plan) ->
                  match (plan, eff, priv) with
                  | Skip, _, _ -> ()
                  | (Put _ | Merge _), Rows (_, _, tr), Some priv ->
                      Wal.log_txn_patch w ~txn:txn.id ~table:name
                        (Csv.patch_of_table priv tr)
                  | _ ->
                      (* commit already degraded inexpressible mixes *)
                      assert false)
                plans;
            Wal.log_txn_commit w ~txn:txn.id;
            flush_or_revoke t w txn;
            k ())

(** [commit t txn ~lookup ~index_defs] atomically publishes the
    transaction: stripe acquisition in canonical order,
    first-committer-wins footprint validation, WAL group commit (begin +
    statements — or physical row-image patches when an install merges —
    + commit marker in one write, fsynced per the log's policy, revoked
    with an abort frame if only the fsync fails), then version
    installation and stamping inside the publish section, run while the
    WAL lock is still held so log order equals commit order.
    [lookup name] returns the session's private version of a written
    table ([None] = dropped); [index_defs] is the full new declaration
    list when the transaction changed DDL.  Returns the commit
    timestamp.  Transactions with no writes and no DDL commit trivially
    without taking any lock. *)
let commit t txn ~lookup ~index_defs =
  if (not (has_writes txn)) && not txn.index_ddl then begin
    Metrics.incr m_commits;
    txn.snap.ts
  end
  else begin
    let names = write_names txn in
    let ids = lock_stripes t names in
    Fun.protect ~finally:(fun () -> unlock_stripes t ids) (fun () ->
        (* Fetch (creating as needed) the stamp records and current
           versions under the publish lock: the hashtables are shared
           across stripes.  The *records* stay stable afterwards — only
           a commit holding this name's stripe mutates them, and that is
           us. *)
        let entries =
          Mutex.protect t.publish (fun () ->
              List.map
                (fun name ->
                  let st =
                    match Hashtbl.find_opt t.stamps name with
                    | Some st -> st
                    | None ->
                        let st =
                          { full_ts = 0; whole_ts = 0; chunk_ts = Hashtbl.create 8 }
                        in
                        Hashtbl.add t.stamps name st;
                        st
                  in
                  let fp = Hashtbl.find txn.writes name in
                  (name, effective t fp, st, Hashtbl.find_opt t.tables name))
                names)
        in
        List.iter (fun (name, eff, st, _) -> validate txn name eff st) entries;
        (* Plan the installs outside the publish section: a footprint
           splice copies rows, and commits on other stripes need not
           wait for it. *)
        let plans =
          List.map
            (fun (name, eff, st, cur) ->
              let priv = lookup name in
              (name, eff, st, priv, plan_install txn name eff priv cur))
            entries
        in
        (* A merged install replays from physical row images; a durable
           transaction that merges but also carries a footprint with no
           row images (DDL, a drop, an untracked rewrite) cannot be
           logged that way, so it degrades to the pre-row-granularity
           outcome: the moved name is a first-committer-wins conflict. *)
        (if t.wal <> None then
           match List.find_opt (fun (_, _, _, _, p) -> is_merge p) plans with
           | Some (mname, _, mst, _, _) ->
               let expressible =
                 List.for_all
                   (fun (_, eff, _, priv, plan) ->
                     match (plan, eff, priv) with
                     | Skip, _, _ -> true
                     | (Put _ | Merge _), Rows _, Some _ -> true
                     | _ -> false)
                   plans
               in
               if not expressible then begin
                 Metrics.incr m_row_conflicts;
                 conflict txn mname "a WAL-replayable install" mst.full_ts
               end
           | None -> ());
        (* Write-ahead: the transaction is durable before it is visible,
           and the publish below runs while the WAL lock is still held so
           log order always equals commit order. *)
        wal_commit_group t txn ~plans (fun () ->
        Mutex.protect t.publish (fun () ->
            let ts = Oracle.advance t.oracle in
            List.iter
              (fun (name, eff, st, _priv, plan) ->
                match plan with
                | Skip -> ()
                | Remove ->
                    Hashtbl.remove t.tables name;
                    st.full_ts <- ts;
                    st.whole_ts <- ts;
                    Hashtbl.reset st.chunk_ts
                | Put tbl | Merge tbl -> (
                    Hashtbl.replace t.tables name tbl;
                    match eff with
                    | Whole ->
                        st.full_ts <- ts;
                        st.whole_ts <- ts;
                        (* chunk identities did not survive the rewrite *)
                        Hashtbl.reset st.chunk_ts
                    | Rows (chunks, _appended, _) ->
                        (* appends bump only [full_ts]: they cannot
                           collide with anyone's base rows *)
                        st.full_ts <- ts;
                        List.iter
                          (fun c -> Hashtbl.replace st.chunk_ts c ts)
                          chunks))
              plans;
            (match index_defs with Some defs -> t.index_defs <- defs | None -> ());
            Metrics.incr m_commits;
            Metrics.set g_committed_ts ts;
            ts)))
  end
