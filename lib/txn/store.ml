(* The multi-version store behind snapshot-isolation transactions.

   The store owns the *committed* state: one immutable [Table.t] version
   per table name, a per-name stamp (the commit timestamp of the last
   transaction that wrote, created or dropped that name), the declared
   secondary-index definitions, and — for durable stores — the shared
   write-ahead log.

   The protocol, LegoBase-style "abstraction without regret": versioning
   lives entirely behind the storage interface, so engines and kernels
   never see it.

   - [begin_txn] pins a snapshot: the current commit timestamp plus the
     current table-version pointers.  Building it takes the mutex for a
     pointer copy (O(#tables)), after which readers touch no shared
     mutable state at all — a reader NEVER blocks behind a writer, and a
     writer never waits for readers.
   - Writers copy-on-write: the session layer clones a table version
     before the first write ({!Quill_storage.Table.cow_copy}, a shallow
     row-vector copy) and mutates only the private clone.
   - [commit] is first-committer-wins: under the commit lock, if any
     name in the write set carries a stamp newer than the snapshot,
     another transaction committed there first and this one aborts with
     {!Conflict}.  Otherwise the oracle assigns the next commit
     timestamp, the transaction's frames (begin / statements / commit
     marker) are group-committed to the WAL in ONE write, and the
     private versions are installed as the new committed state.

   Recovery composes with the WAL layer: a committed transaction's
   frames hit disk atomically before the commit is acknowledged, so
   replay ({!Quill_storage.Wal.replay}) yields exactly the committed
   transactions in commit order. *)

module Table = Quill_storage.Table
module Wal = Quill_storage.Wal
module Metrics = Quill_obs.Metrics

exception Conflict of string
(** First-committer-wins abort: another transaction committed to a table
    in this transaction's write set after this transaction's snapshot.
    The loser's changes are discarded; retrying on a fresh snapshot is
    the standard reaction. *)

let m_begins = Metrics.counter "quill.txn.begins"
let m_commits = Metrics.counter "quill.txn.commits"
let m_rollbacks = Metrics.counter "quill.txn.rollbacks"
let m_conflicts = Metrics.counter "quill.txn.conflicts"
let g_committed_ts = Metrics.gauge "quill.txn.committed_ts"

type t = {
  mutex : Mutex.t;  (** guards committed state and the commit protocol *)
  tables : (string, Table.t) Hashtbl.t;  (** committed versions, immutable *)
  stamps : (string, int) Hashtbl.t;  (** name -> commit ts of last writer *)
  mutable index_defs : (string * string) list;  (** committed (table, col) *)
  oracle : Oracle.t;
  mutable wal : Wal.t option;  (** shared log of a durable store *)
}

(** A pinned committed snapshot: table versions as of [ts]. *)
type snapshot = {
  ts : int;
  tables : Table.t list;
  snap_index_defs : (string * string) list;
}

(** An open transaction.  [writes] lists the names this transaction
    created, dropped or copy-on-wrote; [stmts] the SQL to log, newest
    first.  The session layer owns the private table versions (its
    catalog view); the store only sees them at commit. *)
type txn = {
  id : int;
  snap : snapshot;
  mutable writes : string list;
  mutable stmts : string list;
  mutable index_ddl : bool;  (** index/DDL changed: republish defs at commit *)
}

(** [create ?wal ~tables ~index_defs ()] seeds a store with committed
    state (timestamp 0).  [tables] become the committed versions and
    must not be mutated by the caller afterwards. *)
let create ?wal ~tables ~index_defs () =
  let t =
    {
      mutex = Mutex.create ();
      tables = Hashtbl.create 16;
      stamps = Hashtbl.create 16;
      index_defs;
      oracle = Oracle.create ();
      wal;
    }
  in
  List.iter (fun tbl -> Hashtbl.replace t.tables (Table.name tbl) tbl) tables;
  t

(** [committed_ts t] is the newest commit timestamp (lock-free read). *)
let committed_ts t = Oracle.last_ts t.oracle

(** [wal t] is the store's write-ahead log, if durable. *)
let wal t = t.wal

(** [set_wal t w] swaps the log handle (checkpointing starts a fresh
    generation's log).  Call with {!locked} held or before sharing. *)
let set_wal t w = t.wal <- w

(** [locked t f] runs [f] with the commit lock held — quiesces commits,
    e.g. around a checkpoint that snapshots committed state and swaps
    the WAL. *)
let locked t f = Mutex.protect t.mutex f

(** [snapshot_unlocked t] is {!snapshot} for callers already inside
    {!locked} (e.g. a checkpoint quiescing commits). *)
let snapshot_unlocked t =
  {
    ts = Oracle.last_ts t.oracle;
    tables = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables [];
    snap_index_defs = t.index_defs;
  }

(** [snapshot t] pins the current committed state: O(#tables) pointer
    copies under the mutex, then fully private. *)
let snapshot t = Mutex.protect t.mutex (fun () -> snapshot_unlocked t)

(** [begin_txn t] opens a transaction on a fresh snapshot. *)
let begin_txn t =
  Metrics.incr m_begins;
  { id = Oracle.fresh_id t.oracle; snap = snapshot t; writes = []; stmts = [];
    index_ddl = false }

(** [rollback txn] discards the transaction (the session layer drops its
    private versions; the store never saw them). *)
let rollback (_ : txn) = Metrics.incr m_rollbacks

(* The conflict check: any name in the write set stamped after our
   snapshot means someone committed there first. *)
let check_conflicts t txn =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.stamps name with
      | Some s when s > txn.snap.ts ->
          Metrics.incr m_conflicts;
          raise
            (Conflict
               (Printf.sprintf
                  "transaction %d lost table %S to a first committer (snapshot ts \
                   %d, table committed at ts %d)"
                  txn.id name txn.snap.ts s))
      | _ -> ())
    txn.writes

(** [commit t txn ~lookup ~index_defs] atomically publishes the
    transaction: first-committer-wins conflict check, WAL group commit
    (begin + statements + commit marker in one write, fsynced per the
    log's policy), then version installation.  [lookup name] returns the
    session's private version of a written table ([None] = dropped);
    [index_defs] is the full new declaration list when the transaction
    changed DDL.  Returns the commit timestamp.  Read-only transactions
    commit trivially without taking the lock. *)
let commit t txn ~lookup ~index_defs =
  if txn.writes = [] then begin
    Metrics.incr m_commits;
    txn.snap.ts
  end
  else
    Mutex.protect t.mutex (fun () ->
        check_conflicts t txn;
        (* Write-ahead: the transaction is durable before it is visible.
           A crash inside the flush leaves a torn, commit-marker-less
           group that replay drops — correct, the client was never
           acknowledged. *)
        (match t.wal with
        | Some w when txn.stmts <> [] ->
            Wal.log_txn_begin w ~txn:txn.id;
            List.iter (Wal.log_txn_statement w ~txn:txn.id) (List.rev txn.stmts);
            Wal.log_txn_commit w ~txn:txn.id;
            Wal.flush w
        | _ -> ());
        let ts = Oracle.advance t.oracle in
        List.iter
          (fun name ->
            Hashtbl.replace t.stamps name ts;
            match lookup name with
            | Some tbl -> Hashtbl.replace t.tables name tbl
            | None -> Hashtbl.remove t.tables name)
          txn.writes;
        (match index_defs with Some defs -> t.index_defs <- defs | None -> ());
        Metrics.incr m_commits;
        Metrics.set g_committed_ts ts;
        ts)
