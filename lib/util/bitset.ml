(* Fixed-capacity bitsets used as null masks and selection masks.

   Bits are stored in an int array, 63 usable bits per word would waste a
   bit; we use all 63 bits of the OCaml native int per word (Sys.int_size
   is 63 on 64-bit systems) to keep indexing branch-free. *)

type t = { words : int array; length : int }

let bits_per_word = Sys.int_size

(** [create n] returns a bitset of [n] bits, all clear. *)
let create n =
  assert (n >= 0);
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; length = n }

(** [create_full n] returns a bitset of [n] bits, all set. *)
let create_full n =
  let t = create n in
  Array.fill t.words 0 (Array.length t.words) (-1);
  (* Clear the tail beyond [n] so [count] stays exact. *)
  let tail = n mod bits_per_word in
  if tail <> 0 && Array.length t.words > 0 then
    t.words.(Array.length t.words - 1) <- (1 lsl tail) - 1;
  t

(** [length t] is the number of addressable bits. *)
let length t = t.length

(** [set t i] sets bit [i]. *)
let set t i =
  assert (i >= 0 && i < t.length);
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

(** [clear t i] clears bit [i]. *)
let clear t i =
  assert (i >= 0 && i < t.length);
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

(** [get t i] tests bit [i]. *)
let get t i =
  assert (i >= 0 && i < t.length);
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

(** [assign t i b] sets bit [i] to [b]. *)
let assign t i b = if b then set t i else clear t i

let popcount_word w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

(** [count t] is the number of set bits. *)
let count t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

(** [iter_set t f] applies [f] to every set bit index, ascending. *)
let iter_set t f =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let lowest = !word land - !word in
      let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
      f ((w * bits_per_word) + log2 lowest 0);
      word := !word land (!word - 1)
    done
  done

(** [copy t] returns a fresh bitset with the same bits. *)
let copy t = { words = Array.copy t.words; length = t.length }

(** [union_into ~into src] ors [src] into [into]; lengths must match. *)
let union_into ~into src =
  assert (into.length = src.length);
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor src.words.(i)
  done

(** [is_empty t] is true when no bit is set. *)
let is_empty t = Array.for_all (fun w -> w = 0) t.words

(** [land_range ~into src ~src_pos] ands a window of [src] starting at bit
    [src_pos] into [into]: [into.(i) <- into.(i) && src.(src_pos + i)] for
    every [i < length into].  The window may start at any bit offset; the
    word-at-a-time loop shifts across word boundaries, so batch validity
    masks can be built from a storage column's bitset without per-bit
    reads. *)
let land_range ~into src ~src_pos =
  let n = into.length in
  assert (src_pos >= 0 && src_pos + n <= src.length);
  let nwords = Array.length into.words in
  let w0 = src_pos / bits_per_word in
  let shift = src_pos mod bits_per_word in
  if shift = 0 then
    for w = 0 to nwords - 1 do
      into.words.(w) <- into.words.(w) land src.words.(w0 + w)
    done
  else begin
    let src_words = Array.length src.words in
    for w = 0 to nwords - 1 do
      let lo = src.words.(w0 + w) lsr shift in
      let hi =
        if w0 + w + 1 < src_words then src.words.(w0 + w + 1) lsl (bits_per_word - shift)
        else 0
      in
      into.words.(w) <- into.words.(w) land (lo lor hi)
    done
  end
