(* Hash primitives shared by hash joins, hash aggregation and indexes.

   These are deliberately simple, well-mixed integer hashes; the engine
   depends on their avalanche behaviour for bucket balance, which the test
   suite checks statistically. *)

(** [mix_int x] is a 64-bit finalizer (murmur3 fmix-style) restricted to the
    OCaml int range; good avalanche for consecutive keys. *)
let mix_int x =
  let x = x lxor (x lsr 33) in
  let x = x * 0xff51afd7ed558cc in
  let x = x lxor (x lsr 33) in
  let x = x * 0xc4ceb9fe1a85ec5 in
  x lxor (x lsr 33)

(** [hash_string s] is FNV-1a over the bytes of [s]. *)
let hash_string s =
  (* FNV-1a offset basis, top bits dropped to fit OCaml's 63-bit int. *)
  let h = ref 0x0bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  mix_int !h

(** [hash_float f] hashes the bit pattern of [f]; equal floats (including
    0. and -0. distinctly) hash equally. *)
let hash_float f = mix_int (Int64.to_int (Int64.bits_of_float f))

(** [combine h1 h2] mixes two hash values non-commutatively. *)
let combine h1 h2 = mix_int ((h1 * 31) lxor h2)

(* CRC32 (IEEE 802.3, reflected polynomial 0xedb88320) — a checksum, not
   a hash: unlike the mixers above it detects burst errors and torn
   writes, which is what the WAL and snapshot manifests need. *)
let crc32_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** [crc32 ?pos ?len s] is the CRC32 of the given slice of [s] (whole
    string by default), as a non-negative int in [0, 2^32). *)
let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc32_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff
