(* Growable polymorphic vector with amortized O(1) push.

   Used throughout the engine for building result sets and intermediate
   buffers whose size is not known up front. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

(** [create ~dummy] returns an empty vector. [dummy] fills unused slots and
    is never observable through the API. *)
let create ~dummy = { data = [||]; len = 0; dummy }

(** [with_capacity ~dummy n] preallocates room for [n] elements. *)
let with_capacity ~dummy n =
  { data = (if n = 0 then [||] else Array.make n dummy); len = 0; dummy }

(** [length v] is the number of pushed elements. *)
let length v = v.len

let grow v needed =
  let cap = Array.length v.data in
  if needed > cap then begin
    let cap' = max needed (max 8 (cap * 2)) in
    let data' = Array.make cap' v.dummy in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

(** [push v x] appends [x]. *)
let push v x =
  grow v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(** [get v i] returns element [i]; O(1). *)
let get v i =
  assert (i >= 0 && i < v.len);
  v.data.(i)

(** [set v i x] overwrites element [i]. *)
let set v i x =
  assert (i >= 0 && i < v.len);
  v.data.(i) <- x

(** [clear v] removes all elements without shrinking capacity. *)
let clear v = v.len <- 0

(** [to_array v] copies the contents into a fresh array. *)
let to_array v = Array.sub v.data 0 v.len

(** [of_array ~dummy a] builds a vector containing the elements of [a]. *)
let of_array ~dummy a = { data = Array.copy a; len = Array.length a; dummy }

(** [copy v] is an independent vector with the same elements (the
    elements themselves are shared, not deep-copied). *)
let copy v = { data = Array.sub v.data 0 v.len; len = v.len; dummy = v.dummy }

(** [iter f v] applies [f] to each element in order. *)
let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

(** [iteri f v] is [iter] with the index. *)
let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

(** [fold f acc v] folds left over the elements. *)
let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

(** [to_list v] returns the elements as a list, in order. *)
let to_list v = List.init v.len (fun i -> v.data.(i))

(** [sort cmp v] sorts the vector in place. *)
let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
