(* The traffic driver: replay parameterized query streams from N
   concurrent sessions against a shared store (in-process) or a running
   TCP server, and report throughput plus latency percentiles.

   Arrival control is open-loop when [spec.rate > 0]: the k-th operation
   of the whole run is scheduled at [t0 + k/rate] (round-robin across
   sessions), and latency is measured from the *scheduled* arrival, not
   from when the session got around to sending it — so queueing delay
   under overload shows up in the percentiles instead of being
   coordinated-omission'd away.  With [rate = 0] the driver is
   closed-loop: each session fires its next query as soon as the
   previous one returns, and latency is pure service time.

   Every query's result is folded into an order-insensitive multiset
   digest, so two runs over the same seeded streams can assert they
   computed identical results regardless of engine, parallelism or
   transport (the differential tests in test/test_traffic.ml). *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Db = Quill.Db
module Metrics = Quill_obs.Metrics
module Client = Quill_server.Client
module Wire = Quill_server.Wire
module Rng = Quill_util.Rng
module Timer = Quill_util.Timer

type op = { sql : string; params : Value.t array }

type target =
  | In_process of Db.store  (** one [Db.session] per driver session *)
  | Tcp of { host : string; port : int }
      (** one connection per session; statements are prepared once and
          executed via 'E' frames (the plan-cached server path) *)

type mode =
  | Prepared  (** the plan-cached path: [Db.exec_prepared] *)
  | Fresh  (** parse-plan-execute every time: [Db.exec] *)
  | Engine of Db.engine
      (** force one engine via [Db.query]; SELECT-only streams,
          in-process targets only *)

type spec = {
  rate : float;  (** arrivals/sec across all sessions; 0 = closed loop *)
  mode : mode;
  warmup : int;
      (** per-session operations executed (and digested) before latency
          recording starts *)
}

let default_spec = { rate = 0.0; mode = Prepared; warmup = 0 }

type report = {
  sessions : int;
  issued : int;
  acked : int;
  errors : int;
  elapsed : float;  (** seconds, first schedule to last ack *)
  qps : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;  (** latencies in seconds, from the fine recorder *)
  obs_p50 : float;
  obs_p95 : float;
  obs_p99 : float;
      (** the same percentiles as read back from the
          [quill.workload.latency_seconds] obs histogram *)
  max_lag : float;
      (** open loop: worst distance behind schedule at send time *)
  digest : int;  (** order-insensitive multiset digest of all results *)
}

let m_issued = Metrics.counter "quill.workload.issued"
let m_acked = Metrics.counter "quill.workload.acked"
let m_errors = Metrics.counter "quill.workload.errors"
let h_latency = Metrics.histogram "quill.workload.latency_seconds"

(* --- result digests ---------------------------------------------------- *)

(* [Hashtbl.hash] is structural, so a row hashed from a server-side
   [Value.t array] and the same row hashed client-side agree; summing
   per-row hashes makes the digest insensitive to row order. *)
let digest_rows fold_rows n = fold_rows (fun acc row -> acc + Hashtbl.hash row) (17 * n)

let digest_of_table t =
  let n = Table.row_count t in
  digest_rows
    (fun f acc ->
      let r = ref acc in
      for i = 0 to n - 1 do
        r := f !r (Table.get_row t i)
      done;
      !r)
    n

let digest_of_result = function
  | Db.Rows t -> digest_of_table t
  | Db.Affected n -> 31 + n
  | Db.Text s -> Hashtbl.hash s

let digest_of_response = function
  | Wire.Result (_, rows) ->
      digest_rows (fun f acc -> List.fold_left f acc rows) (List.length rows)
  | Wire.Affected n -> 31 + n
  | Wire.Text s -> Hashtbl.hash s
  | Wire.Prepared _ -> 0
  | Wire.Err (_, m) -> failwith m

(* --- stream generation ------------------------------------------------- *)

(** [streams ~sessions ~per_session ~seed gen] builds one deterministic
    operation stream per session; [gen] draws one operation from the
    session's private RNG.  Same seed, same streams — the basis of every
    differential test. *)
let streams ~sessions ~per_session ~seed gen =
  Array.init sessions (fun i ->
      let rng = Rng.create (seed + (7919 * (i + 1))) in
      Array.init per_session (fun _ -> gen rng))

(* --- the run loop ------------------------------------------------------ *)

let rec cas_max a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then cas_max a x

(** [run ?spec ~target streams] replays [streams] (one array of
    operations per concurrent session) against [target] and returns the
    aggregate report.  Individual query failures are counted in
    [errors]; the run always completes. *)
let run ?(spec = default_spec) ~target streams =
  let sessions = Array.length streams in
  if sessions = 0 then invalid_arg "Driver.run: no sessions";
  (match (target, spec.mode) with
  | Tcp _, (Fresh | Engine _) ->
      invalid_arg "Driver.run: TCP targets only support Prepared mode"
  | _ -> ());
  let recorder = Latency.create () in
  let issued = Atomic.make 0
  and acked = Atomic.make 0
  and errors = Atomic.make 0
  and digest = Atomic.make 0
  and max_lag = Atomic.make 0.0 in
  let t0 = Timer.now () in
  let session_body i ops () =
    let exec_op, cleanup =
      match target with
      | In_process store ->
          let db = Db.session store in
          let f op =
            match spec.mode with
            | Prepared -> digest_of_result (Db.exec_prepared db ~params:op.params op.sql)
            | Fresh -> digest_of_result (Db.exec db ~params:op.params op.sql)
            | Engine e ->
                digest_of_table (Db.query db ~engine:e ~params:op.params op.sql)
          in
          (f, fun () -> ())
      | Tcp { host; port } ->
          let c = Client.connect ~host ~port () in
          let ids = Hashtbl.create 8 in
          let f op =
            let id =
              match Hashtbl.find_opt ids op.sql with
              | Some id -> id
              | None -> (
                  match Client.prepare c op.sql with
                  | Ok id ->
                      Hashtbl.replace ids op.sql id;
                      id
                  | Error m -> failwith m)
            in
            digest_of_response (Client.execute c id op.params)
          in
          (f, fun () -> Client.close c)
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    Array.iteri
      (fun k op ->
        let sched =
          if spec.rate > 0.0 then
            Some (t0 +. (Float.of_int ((k * sessions) + i) /. spec.rate))
          else None
        in
        (match sched with
        | Some s ->
            let rec wait () =
              let dt = s -. Timer.now () in
              if dt > 0.0 then begin
                Thread.delay (Float.min dt 0.002);
                wait ()
              end
            in
            wait ();
            cas_max max_lag (Timer.now () -. s)
        | None -> ());
        let start = match sched with Some s -> s | None -> Timer.now () in
        Atomic.incr issued;
        Metrics.incr m_issued;
        try
          let d = exec_op op in
          let dt = Timer.now () -. start in
          Atomic.incr acked;
          Metrics.incr m_acked;
          ignore (Atomic.fetch_and_add digest d);
          if k >= spec.warmup then begin
            Latency.record recorder dt;
            Metrics.observe h_latency dt
          end
        with e ->
          (match e with
          | Db.Error _ | Db.Aborted _ | Db.Conflict _ | Failure _
          | Unix.Unix_error _ | Wire.Protocol_error _ ->
              Atomic.incr errors;
              Metrics.incr m_errors
          | e -> raise e))
      ops
  in
  let threads =
    Array.to_list
      (Array.mapi
         (fun i ops ->
           Thread.create
             (fun () ->
               try session_body i ops ()
               with _ ->
                 (* connection/setup failure: everything this session
                    did not ack shows up as issued<>acked *)
                 Atomic.incr errors;
                 Metrics.incr m_errors)
             ())
         streams)
  in
  List.iter Thread.join threads;
  let elapsed = Float.max 1e-9 (Timer.now () -. t0) in
  let acked_n = Atomic.get acked in
  let obs_p50, obs_p95, obs_p99 = Metrics.percentiles h_latency in
  {
    sessions;
    issued = Atomic.get issued;
    acked = acked_n;
    errors = Atomic.get errors;
    elapsed;
    qps = Float.of_int acked_n /. elapsed;
    mean = Latency.mean recorder;
    p50 = Latency.percentile recorder 0.5;
    p95 = Latency.percentile recorder 0.95;
    p99 = Latency.percentile recorder 0.99;
    max = Latency.max_seconds recorder;
    obs_p50;
    obs_p95;
    obs_p99;
    max_lag = Atomic.get max_lag;
    digest = Atomic.get digest;
  }

(** [render r] pretty-prints a report for quillsh and the bench. *)
let render r =
  let ms v = v *. 1e3 in
  Printf.sprintf
    "sessions=%d issued=%d acked=%d errors=%d elapsed=%.2fs throughput=%.0f qps\n\
     latency (ms): mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f%s\n\
     obs histogram (ms): p50<=%.3f p95<=%.3f p99<=%.3f"
    r.sessions r.issued r.acked r.errors r.elapsed r.qps (ms r.mean) (ms r.p50)
    (ms r.p95) (ms r.p99) (ms r.max)
    (if r.max_lag > 0.0 then Printf.sprintf " max_lag=%.3f" (ms r.max_lag)
     else "")
    (ms r.obs_p50) (ms r.obs_p95) (ms r.obs_p99)
