(* Per-query latency recording for the traffic driver.

   A lock-free log-bucket histogram, like [Quill_obs.Metrics] histograms
   but much finer: 20 buckets per decade (ratio 10^(1/20) ~ 1.122) from
   1 microsecond up past 15 minutes, so reported percentiles carry at
   most ~6% relative error instead of the metrics registry's 4x bucket
   ratio.  Recording is one atomic increment per bucket — safe to share
   one recorder across every session thread of a run. *)

let lowest = 1e-6
let buckets_per_decade = 20
let bucket_count = 180  (* 9 decades: 1e-6 s .. 1e3 s, last bucket overflow *)
let log_ratio = Float.log 10.0 /. Float.of_int buckets_per_decade

(** [bucket_bound i] is the inclusive upper bound of bucket [i]. *)
let bucket_bound i = lowest *. Float.exp (log_ratio *. Float.of_int i)

let bucket_index v =
  if Float.is_nan v || v <= lowest then 0
  else begin
    let i = Float.to_int (Float.ceil (Float.log (v /. lowest) /. log_ratio)) in
    if i >= bucket_count then bucket_count - 1 else max 0 i
  end

type t = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : float Atomic.t;
  max : float Atomic.t;
}

(** [create ()] returns an empty recorder. *)
let create () =
  {
    buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0.0;
    max = Atomic.make 0.0;
  }

let rec cas_add a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then cas_add a x

let rec cas_max a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then cas_max a x

(** [record t seconds] records one latency observation (thread-safe). *)
let record t v =
  ignore (Atomic.fetch_and_add t.buckets.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add t.count 1);
  cas_add t.sum v;
  cas_max t.max v

(** [count t] is the number of recorded observations. *)
let count t = Atomic.get t.count

(** [mean t] is the mean latency (0 when empty). *)
let mean t =
  let n = count t in
  if n = 0 then 0.0 else Atomic.get t.sum /. Float.of_int n

(** [max_seconds t] is the largest recorded latency, exactly. *)
let max_seconds t = Atomic.get t.max

(** [percentile t q] is the [q]-quantile ([0..1]): the upper bound of
    the bucket holding the rank-[ceil q*n] observation, so it is within
    one bucket ratio (~6%) above the true order statistic.  The top
    (overflow) bucket reports the exact maximum instead of its bound. *)
let percentile t q =
  let n = count t in
  if n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (Float.to_int (Float.ceil (q *. Float.of_int n))) in
    let acc = ref 0 and result = ref (max_seconds t) in
    (try
       Array.iteri
         (fun i b ->
           acc := !acc + Atomic.get b;
           if !acc >= rank then begin
             result :=
               (if i = bucket_count - 1 then max_seconds t
                else Float.min (bucket_bound i) (max_seconds t));
             raise Exit
           end)
         t.buckets
     with Exit -> ());
    !result
  end
