(* Tests for the adaptive layer: plan cache, tiering, feedback
   re-optimization and micro-adaptive expression evaluation. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Bexpr = Quill_plan.Bexpr
module Physical = Quill_optimizer.Physical
module Picker = Quill_optimizer.Picker
module Profile = Quill_exec.Profile
module Plan_cache = Quill_adaptive.Plan_cache
module Tiering = Quill_adaptive.Tiering
module Feedback = Quill_adaptive.Feedback
module Micro = Quill_adaptive.Micro

let test_plan_cache_hit_miss () =
  let db = Tutil.random_db ~seed:1 ~rows:50 in
  let cache = Plan_cache.create () in
  let version = Catalog.version (Quill.Db.catalog db) in
  let pplan = Quill.Db.plan db "SELECT id FROM r" in
  Alcotest.(check bool) "miss" true
    (Plan_cache.find cache ~sql:"q" ~param_types:[||] ~params:[||] ~catalog_version:version = None);
  let _ = Plan_cache.add cache ~sql:"q" ~param_types:[||] ~catalog_version:version pplan in
  Alcotest.(check bool) "hit" true
    (Plan_cache.find cache ~sql:"q" ~param_types:[||] ~params:[||] ~catalog_version:version <> None);
  (* Different parameter types are a different entry. *)
  Alcotest.(check bool) "param types keyed" true
    (Plan_cache.find cache ~sql:"q" ~param_types:[| Value.Int_t |] ~params:[||] ~catalog_version:version
    = None);
  (* Catalog changes invalidate. *)
  Alcotest.(check bool) "stale dropped" true
    (Plan_cache.find cache ~sql:"q" ~param_types:[||] ~params:[||] ~catalog_version:(version + 1) = None);
  Alcotest.(check int) "dropped from table" 0 (Plan_cache.size cache)

let test_plan_cache_eviction () =
  let db = Tutil.random_db ~seed:1 ~rows:10 in
  let cache = Plan_cache.create ~capacity:4 () in
  let version = Catalog.version (Quill.Db.catalog db) in
  let pplan = Quill.Db.plan db "SELECT id FROM r" in
  for i = 0 to 9 do
    ignore
      (Plan_cache.add cache ~sql:(Printf.sprintf "q%d" i) ~param_types:[||]
         ~catalog_version:version pplan)
  done;
  Alcotest.(check bool) "bounded" true (Plan_cache.size cache <= 5)

let test_plan_cache_gauge_tracks () =
  (* Regression: clear/invalidate dropped entries without moving the
     quill.plan_cache.entries gauge, so it read stale counts forever. *)
  let db = Tutil.random_db ~seed:7 ~rows:20 in
  let cache = Plan_cache.create () in
  let version = Catalog.version (Quill.Db.catalog db) in
  let pplan = Quill.Db.plan db "SELECT id FROM r" in
  let g = Quill_obs.Metrics.gauge "quill.plan_cache.entries" in
  let gauge () = Quill_obs.Metrics.gauge_value g in
  ignore (Plan_cache.add cache ~sql:"g1" ~param_types:[||] ~catalog_version:version pplan);
  ignore (Plan_cache.add cache ~sql:"g2" ~param_types:[||] ~catalog_version:version pplan);
  Alcotest.(check int) "after adds" 2 (gauge ());
  Plan_cache.invalidate cache ~sql:"g1" ~param_types:[||];
  Alcotest.(check int) "after invalidate" 1 (gauge ());
  (* Dropping a stale entry inside find also updates the gauge. *)
  ignore (Plan_cache.find cache ~sql:"g2" ~param_types:[||] ~params:[||] ~catalog_version:(version + 1));
  Alcotest.(check int) "after stale drop" 0 (gauge ());
  ignore (Plan_cache.add cache ~sql:"g3" ~param_types:[||] ~catalog_version:version pplan);
  Plan_cache.clear cache;
  Alcotest.(check int) "after clear" 0 (gauge ())

let test_plan_cache_key_unambiguous () =
  (* Regression: the key used to be the concatenation
     [sql ^ "|" ^ String.concat "," dtype_names], so a SQL text
     containing the separator could alias a differently-typed entry.
     The structured key must keep these two distinct. *)
  let db = Tutil.random_db ~seed:3 ~rows:20 in
  let cache = Plan_cache.create () in
  let version = Catalog.version (Quill.Db.catalog db) in
  let pplan = Quill.Db.plan db "SELECT id FROM r" in
  ignore
    (Plan_cache.add cache ~sql:"q|int" ~param_types:[||]
       ~catalog_version:version pplan);
  Alcotest.(check bool) "no alias across the separator" true
    (Plan_cache.find cache ~sql:"q" ~param_types:[| Value.Int_t |]
       ~params:[||] ~catalog_version:version
    = None);
  ignore
    (Plan_cache.add cache ~sql:"q" ~param_types:[| Value.Int_t |]
       ~catalog_version:version pplan);
  Alcotest.(check int) "two distinct entries" 2 (Plan_cache.size cache);
  Alcotest.(check bool) "both retrievable" true
    (Plan_cache.find cache ~sql:"q|int" ~param_types:[||] ~params:[||]
       ~catalog_version:version
     <> None
    && Plan_cache.find cache ~sql:"q" ~param_types:[| Value.Int_t |]
         ~params:[||] ~catalog_version:version
       <> None)

let test_plan_cache_byte_budget () =
  let db = Tutil.random_db ~seed:5 ~rows:20 in
  let version = Catalog.version (Quill.Db.catalog db) in
  let pplan = Quill.Db.plan db "SELECT id, v FROM r WHERE k > 3" in
  (* Learn the per-entry charge from a throwaway cache (all entries here
     share one plan, so they all weigh the same). *)
  let probe = Plan_cache.create () in
  ignore (Plan_cache.add probe ~sql:"p" ~param_types:[||] ~catalog_version:version pplan);
  let per = Plan_cache.used_bytes probe in
  Alcotest.(check bool) "entries are charged" true (per > 0);
  let m_evictions = Quill_obs.Metrics.counter "quill.plan_cache.evictions" in
  let ev0 = Quill_obs.Metrics.value m_evictions in
  (* Budget for three entries (and change): adding ten must evict seven,
     keeping the byte gauge under budget. *)
  let budget = (3 * per) + (per / 2) in
  let cache = Plan_cache.create ~budget_bytes:budget () in
  for i = 0 to 9 do
    ignore
      (Plan_cache.add cache ~sql:(Printf.sprintf "b%d" i) ~param_types:[||]
         ~catalog_version:version pplan)
  done;
  Alcotest.(check int) "bounded by bytes" 3 (Plan_cache.size cache);
  Alcotest.(check bool) "under budget" true (Plan_cache.used_bytes cache <= budget);
  Alcotest.(check int) "evictions counted" 7
    (Quill_obs.Metrics.value m_evictions - ev0);
  (* LRU: touching b7 via a hit makes b8 the eviction victim. *)
  ignore
    (Plan_cache.find cache ~sql:"b7" ~param_types:[||] ~params:[||]
       ~catalog_version:version);
  ignore
    (Plan_cache.add cache ~sql:"b10" ~param_types:[||] ~catalog_version:version
       pplan);
  Alcotest.(check bool) "recently-used survives" true
    (Plan_cache.find cache ~sql:"b7" ~param_types:[||] ~params:[||]
       ~catalog_version:version
    <> None);
  (* A budget below any single entry keeps exactly one plan live rather
     than thrashing to zero. *)
  Plan_cache.set_budget cache 1;
  Alcotest.(check int) "oversized keeps newest" 1 (Plan_cache.size cache)

(* A skewed, indexed column: ~0.25% of values land in [0,10), the rest
   spread over [1000, 1e6).  A range predicate's selectivity therefore
   swings across decade bands with the bound parameter, and the cheapest
   access path swings with it (index scan vs full scan — the cost model
   charges ~25x per random index fetch, so the index only wins when the
   band is genuinely selective). *)
let skewed_db () =
  let db = Quill.Db.create () in
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "v" Value.Int_t;
        Schema.col ~nullable:false "pad" Value.Int_t ]
  in
  let t = Table.create ~name:"skew" schema in
  let rng = Quill_util.Rng.create 29 in
  for _ = 1 to 4000 do
    let v =
      if Quill_util.Rng.int rng 400 = 0 then Quill_util.Rng.int rng 10
      else 1000 + Quill_util.Rng.int rng 999_000
    in
    Table.insert t [| Value.Int v; Value.Int (Quill_util.Rng.int rng 100) |]
  done;
  Catalog.add (Quill.Db.catalog db) t;
  ignore (Quill.Db.exec db "CREATE INDEX ON skew (v)");
  Quill.Db.analyze db "skew";
  db

let uses_index plan =
  Array.exists
    (fun (op : Physical.t) ->
      match op with Physical.Index_scan _ -> true | _ -> false)
    (Physical.preorder plan)

(* The acceptance scenario for parameter-sensitive plans: a cached plan
   is re-picked when the bound parameter crosses a selectivity band, the
   re-pick is counted, and each band keeps its own variant. *)
let test_param_band_repick () =
  let module Metrics = Quill_obs.Metrics in
  let db = skewed_db () in
  let sql = "SELECT count(*) FROM skew WHERE v < $1" in
  let small = [| Value.Int 5 |] and huge = [| Value.Int 900_000 |] in
  (* Parameter peeking steers the access path: the selective bound takes
     the index, the non-selective one scans. *)
  Alcotest.(check bool) "small param -> index scan" true
    (uses_index (Quill.Db.plan db ~params:small sql));
  Alcotest.(check bool) "huge param -> full scan" false
    (uses_index (Quill.Db.plan db ~params:huge sql));
  let m_repicks = Metrics.counter "quill.plan_cache.repicks" in
  let check_count params =
    let fresh = Tutil.table_rows (Quill.Db.query db ~params sql) in
    let cached = Tutil.table_rows (Quill.Db.query_adaptive db ~params sql) in
    Tutil.check_same_unordered "adaptive = fresh" fresh cached
  in
  let r0 = Metrics.value m_repicks in
  check_count small;
  check_count small;
  let entries, _, _ = Quill.Db.cache_stats db in
  Alcotest.(check int) "one variant so far" 1 entries;
  Alcotest.(check int) "no repick within the band" 0 (Metrics.value m_repicks - r0);
  (* Crossing the band: the lookup misses, counts a re-pick, and the
     optimizer plans a second variant for the new band. *)
  check_count huge;
  Alcotest.(check int) "band crossing counted" 1 (Metrics.value m_repicks - r0);
  let entries, _, _ = Quill.Db.cache_stats db in
  Alcotest.(check int) "variant per band" 2 entries;
  (* Both variants now serve hits; no further re-picks. *)
  check_count huge;
  check_count small;
  Alcotest.(check int) "variants are stable" 1 (Metrics.value m_repicks - r0);
  let entries, _, _ = Quill.Db.cache_stats db in
  Alcotest.(check int) "still two variants" 2 entries

let test_tiering_policies () =
  let db = Tutil.random_db ~seed:2 ~rows:200 in
  let cache = Plan_cache.create () in
  let version = Catalog.version (Quill.Db.catalog db) in
  let pplan = Quill.Db.plan db "SELECT id, v FROM r WHERE k > 3" in
  let entry = Plan_cache.add cache ~sql:"t" ~param_types:[||] ~catalog_version:version pplan in
  let ctx = Quill_exec.Exec_ctx.create (Quill.Db.catalog db) in
  (* Interpret-always never compiles. *)
  for _ = 1 to 5 do
    ignore (Tiering.execute ~policy:Tiering.Interpret_always ~ctx entry)
  done;
  Alcotest.(check bool) "no compile" true (entry.Plan_cache.compiled = None);
  (* A stencil-covered shape (project over filtered scan) binds on the
     very FIRST tiered run: that's the one-shot win. *)
  let entry2 = Plan_cache.add cache ~sql:"t2" ~param_types:[||] ~catalog_version:version pplan in
  ignore (Tiering.execute ~policy:(Tiering.Tiered 3) ~ctx entry2);
  Alcotest.(check bool) "stencil tier-up at run 1" true
    (entry2.Plan_cache.compiled <> None);
  Alcotest.(check bool) "stencil tier recorded" true
    (entry2.Plan_cache.compiled_tier = Some Quill_compile.Codegen.Tier_stencil);
  (* A shape the binder rejects (ORDER BY -> Sort) follows the classic
     invocation counter.  Reset the measured staging stats so the
     early-payback rule (which needs at least one measured full compile)
     stays out of the way and the sequence is deterministic. *)
  Tiering.reset_stats ();
  let pplan3 = Quill.Db.plan db "SELECT id, v FROM r WHERE k > 3 ORDER BY v, id" in
  let entry3 = Plan_cache.add cache ~sql:"t3" ~param_types:[||] ~catalog_version:version pplan3 in
  ignore (Tiering.execute ~policy:(Tiering.Tiered 3) ~ctx entry3);
  Alcotest.(check bool) "cold" true (entry3.Plan_cache.compiled = None);
  Alcotest.(check bool) "stencil miss recorded" true entry3.Plan_cache.stencil_missed;
  ignore (Tiering.execute ~policy:(Tiering.Tiered 3) ~ctx entry3);
  Alcotest.(check bool) "still cold" true (entry3.Plan_cache.compiled = None);
  ignore (Tiering.execute ~policy:(Tiering.Tiered 3) ~ctx entry3);
  Alcotest.(check bool) "hot -> compiled" true (entry3.Plan_cache.compiled <> None);
  Alcotest.(check bool) "full tier recorded" true
    (entry3.Plan_cache.compiled_tier = Some Quill_compile.Codegen.Tier_full);
  Alcotest.(check bool) "compile time recorded" true (entry3.Plan_cache.compile_time > 0.0);
  (* Results agree between tiers, for both the stencil-bound plan and the
     full-codegen one. *)
  List.iter
    (fun e ->
      let a = Tiering.execute ~policy:Tiering.Interpret_always ~ctx e in
      let b = Tiering.execute ~policy:Tiering.Compile_always ~ctx e in
      Alcotest.(check bool) "tiers agree" true
        (Tutil.same_rows_unordered
           (Quill_util.Vec.to_array a)
           (Quill_util.Vec.to_array b)))
    [ entry2; entry3 ]

(* A table whose filter selectivity defeats the static estimator: values
   correlated so that [a < 100 AND b < 100] matches everything, while
   independence assumes 1/9. *)
let correlated_db () =
  let db = Quill.Db.create () in
  let cat = Quill.Db.catalog db in
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "a" Value.Int_t;
        Schema.col ~nullable:false "b" Value.Int_t;
        Schema.col ~nullable:false "v" Value.Int_t ]
  in
  let t = Table.create ~name:"corr" schema in
  let rng = Quill_util.Rng.create 17 in
  for _ = 1 to 3000 do
    let a = Quill_util.Rng.int rng 300 in
    (* b perfectly correlated with a *)
    Table.insert t [| Value.Int a; Value.Int a; Value.Int (Quill_util.Rng.int rng 1000) |]
  done;
  Catalog.add cat t;
  db

let test_feedback_learns_selectivity () =
  let db = correlated_db () in
  let sql = "SELECT v FROM corr WHERE a < 30 AND b < 30" in
  let pplan = Quill.Db.plan db sql in
  let profile = Profile.create pplan in
  let ctx = Quill_exec.Exec_ctx.create ~profile (Quill.Db.catalog db) in
  let _ = Quill_exec.Vector.run ctx pplan in
  (* The static estimate assumes independence (~1/100); actual is ~1/10. *)
  Alcotest.(check bool) "misestimate detected" true
    (Feedback.should_reoptimize pplan profile);
  let fb = Feedback.create () in
  let updated = Feedback.learn fb (Quill.Db.catalog db) pplan profile in
  Alcotest.(check bool) "hints recorded" true (updated >= 1);
  (* Hints land in estimation: the hinted cardinality is near the truth. *)
  let env =
    Quill_optimizer.Card.make_env ~hints:(Feedback.hints fb) (Quill.Db.catalog db)
      (Quill_stats.Table_stats.Registry.create ())
  in
  let lplan =
    match Quill_sql.Parser.parse sql with
    | Quill_sql.Ast.Select s ->
        Quill_plan.Binder.bind_select
          (Quill_plan.Binder.mk_env ~catalog:(Quill.Db.catalog db)
             ~udfs:(Quill_plan.Udf.builtins ()) ~param_types:[||] ())
          s
    | _ -> assert false
  in
  let est = (Quill_optimizer.Card.derive env (Quill_optimizer.Rewrite.rewrite lplan)).Quill_optimizer.Card.rows in
  let actual = Float.of_int (Table.row_count (Quill.Db.query db sql)) in
  Alcotest.(check bool)
    (Printf.sprintf "hinted estimate %.0f near actual %.0f" est actual)
    true
    (est /. actual < 2.0 && actual /. est < 2.0)

let test_query_adaptive_caches_and_agrees () =
  let db = Tutil.random_db ~seed:8 ~rows:300 in
  Quill.Db.set_policy db (Tiering.Tiered 2);
  let sql = "SELECT tag, count(*) FROM r WHERE k > $1 GROUP BY tag" in
  let params = [| Value.Int 5 |] in
  let direct = Tutil.table_rows (Quill.Db.query db ~params sql) in
  for _ = 1 to 4 do
    let adaptive = Tutil.table_rows (Quill.Db.query_adaptive db ~params sql) in
    Tutil.check_same_unordered "adaptive = direct" direct adaptive
  done;
  let entries, runs, compiled = Quill.Db.cache_stats db in
  Alcotest.(check int) "one entry" 1 entries;
  Alcotest.(check int) "four runs" 4 runs;
  Alcotest.(check int) "tiered up" 1 compiled;
  (* DML invalidates the cached plan. *)
  ignore (Quill.Db.exec db "INSERT INTO s VALUES (9999, 1, 1)");
  let after = Tutil.table_rows (Quill.Db.query_adaptive db ~params sql) in
  Tutil.check_same_unordered "still correct" direct after

(* The adaptive layer's behaviour must be visible through the metrics
   registry: cache traffic, tier-ups and feedback re-optimizations all
   move the process-wide counters (deltas, since the registry is global). *)
let test_registry_observes_adaptive () =
  let module Metrics = Quill_obs.Metrics in
  let m_hits = Metrics.counter "quill.plan_cache.hits" in
  let m_misses = Metrics.counter "quill.plan_cache.misses" in
  let m_tierups = Metrics.counter "quill.tiering.tierups" in
  let m_reopts = Metrics.counter "quill.feedback.reoptimizations" in
  let m_hints = Metrics.counter "quill.feedback.hints" in
  let hits0 = Metrics.value m_hits
  and misses0 = Metrics.value m_misses
  and tierups0 = Metrics.value m_tierups in
  let db = Tutil.random_db ~seed:12 ~rows:150 in
  Quill.Db.set_policy db (Tiering.Tiered 2);
  let sql = "SELECT k, count(*) FROM r GROUP BY k" in
  for _ = 1 to 3 do
    ignore (Quill.Db.query_adaptive db sql)
  done;
  Alcotest.(check int) "one cold miss" 1 (Metrics.value m_misses - misses0);
  Alcotest.(check int) "two warm hits" 2 (Metrics.value m_hits - hits0);
  Alcotest.(check int) "one tier-up at threshold" 1
    (Metrics.value m_tierups - tierups0);
  (* Feedback counters: a correlated predicate triggers re-optimization
     and hint learning on the first (instrumented) adaptive run. *)
  let reopts0 = Metrics.value m_reopts and hints0 = Metrics.value m_hints in
  let cdb = correlated_db () in
  ignore (Quill.Db.query_adaptive cdb "SELECT v FROM corr WHERE a < 30 AND b < 30");
  Alcotest.(check bool) "re-optimization counted" true
    (Metrics.value m_reopts > reopts0);
  Alcotest.(check bool) "hints counted" true (Metrics.value m_hints > hints0);
  (* The gauge tracks live entries. *)
  let g_entries = Metrics.gauge "quill.plan_cache.entries" in
  Alcotest.(check bool) "entries gauge set" true
    (Metrics.gauge_value g_entries >= 1)

let test_micro_adaptive_agrees_and_settles () =
  let schema =
    Schema.create [ Schema.col "x" Value.Int_t; Schema.col "y" Value.Int_t ]
  in
  ignore schema;
  let e =
    (* (x * 2 + y) > 50 *)
    { Bexpr.node =
        Bexpr.Cmp
          ( Bexpr.Gt,
            { Bexpr.node =
                Bexpr.Arith
                  ( Bexpr.Add,
                    { Bexpr.node =
                        Bexpr.Arith
                          ( Bexpr.Mul,
                            { Bexpr.node = Bexpr.Col 0; dtype = Value.Int_t },
                            { Bexpr.node = Bexpr.Lit (Value.Int 2); dtype = Value.Int_t } );
                      dtype = Value.Int_t },
                    { Bexpr.node = Bexpr.Col 1; dtype = Value.Int_t } );
              dtype = Value.Int_t },
            { Bexpr.node = Bexpr.Lit (Value.Int 50); dtype = Value.Int_t } );
      dtype = Value.Bool_t }
  in
  let m = Micro.create ~explore_batches:1 ~reexplore_every:20 e in
  let rng = Quill_util.Rng.create 3 in
  let batch () =
    Array.init 256 (fun _ ->
        [| Value.Int (Quill_util.Rng.int rng 100); Value.Int (Quill_util.Rng.int rng 100) |])
  in
  for _ = 1 to 30 do
    let rows = batch () in
    let got = Micro.eval_batch m ~params:[||] rows in
    Array.iteri
      (fun i row ->
        let expect = Bexpr.eval ~row ~params:[||] e in
        if not (Value.equal expect got.(i)) then
          Alcotest.failf "micro tier disagrees on row %d" i)
      rows
  done;
  (* After exploration it must have settled on some tier (and keep
     correct). *)
  ignore (Micro.current_tier m)

let () =
  Alcotest.run "adaptive"
    [
      ( "plan cache",
        [
          Alcotest.test_case "hit/miss/invalidate" `Quick test_plan_cache_hit_miss;
          Alcotest.test_case "eviction" `Quick test_plan_cache_eviction;
          Alcotest.test_case "entries gauge" `Quick test_plan_cache_gauge_tracks;
          Alcotest.test_case "unambiguous key" `Quick test_plan_cache_key_unambiguous;
          Alcotest.test_case "byte budget + LRU" `Quick test_plan_cache_byte_budget;
          Alcotest.test_case "band repick" `Quick test_param_band_repick;
        ] );
      ("tiering", [ Alcotest.test_case "policies" `Quick test_tiering_policies ]);
      ( "feedback",
        [ Alcotest.test_case "learns selectivity" `Quick test_feedback_learns_selectivity ] );
      ( "integration",
        [
          Alcotest.test_case "query_adaptive" `Quick test_query_adaptive_caches_and_agrees;
          Alcotest.test_case "registry observes" `Quick test_registry_observes_adaptive;
          Alcotest.test_case "micro adaptivity" `Quick test_micro_adaptive_agrees_and_settles;
        ] );
    ]
