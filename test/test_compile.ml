(* Compile-layer internals: unboxed column predicates (Col_pred), unboxed
   numeric expressions (Col_expr), scan->aggregate fusion, and compiled
   plan reuse across parameter changes. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Column = Quill_storage.Column
module Bexpr = Quill_plan.Bexpr
module Col_pred = Quill_compile.Col_pred
module Col_expr = Quill_compile.Col_expr
module Codegen = Quill_compile.Codegen

let lit v dt = { Bexpr.node = Bexpr.Lit v; dtype = dt }
let col i dt = { Bexpr.node = Bexpr.Col i; dtype = dt }
let cmp op a b = { Bexpr.node = Bexpr.Cmp (op, a, b); dtype = Value.Bool_t }
let band a b = { Bexpr.node = Bexpr.And (a, b); dtype = Value.Bool_t }

(* A three-column fixture: ints (with nulls), floats, strings. *)
let fixture () =
  let ints =
    Column.of_values Value.Int_t
      [| Value.Int 5; Value.Null; Value.Int (-3); Value.Int 10; Value.Int 7 |]
  in
  let floats =
    Column.of_values Value.Float_t
      [| Value.Float 1.5; Value.Float 2.5; Value.Null; Value.Float (-0.5); Value.Float 4.0 |]
  in
  let strs =
    Column.of_values Value.Str_t
      [| Value.Str "a"; Value.Str "bb"; Value.Str "c"; Value.Null; Value.Str "bb" |]
  in
  [| ints; floats; strs |]

let rows_of cols =
  Array.init (Column.length cols.(0)) (fun i ->
      Array.map (fun c -> Column.get c i) cols)

(* Reference: row-wise interpretation; fast path must match exactly for
   every supported predicate (NULL counts as false). *)
let check_pred_matches cols e =
  match Col_pred.compile cols [||] e with
  | None -> Alcotest.failf "expected a fast path for %s" (Bexpr.to_string e)
  | Some fast ->
      let rows = rows_of cols in
      Array.iteri
        (fun i row ->
          let reference = Bexpr.eval_pred ~row ~params:[||] e in
          if fast i <> reference then
            Alcotest.failf "fast pred disagrees at row %d for %s" i (Bexpr.to_string e))
        rows

let test_col_pred_shapes () =
  let cols = fixture () in
  let ic = col 0 Value.Int_t and fc = col 1 Value.Float_t and sc = col 2 Value.Str_t in
  List.iter (check_pred_matches cols)
    [ cmp Bexpr.Gt ic (lit (Value.Int 4) Value.Int_t);
      cmp Bexpr.Eq ic (lit (Value.Int 10) Value.Int_t);
      cmp Bexpr.Neq ic (lit (Value.Int 5) Value.Int_t);
      (* flipped operand order *)
      cmp Bexpr.Lt (lit (Value.Int 6) Value.Int_t) ic;
      cmp Bexpr.Le fc (lit (Value.Float 2.0) Value.Float_t);
      (* int literal against float column widens *)
      cmp Bexpr.Ge fc (lit (Value.Int 2) Value.Int_t);
      cmp Bexpr.Eq sc (lit (Value.Str "bb") Value.Str_t);
      band
        (cmp Bexpr.Gt ic (lit (Value.Int 0) Value.Int_t))
        (cmp Bexpr.Lt fc (lit (Value.Float 3.0) Value.Float_t));
      { Bexpr.node = Bexpr.Or
            ( cmp Bexpr.Eq ic (lit (Value.Int 5) Value.Int_t),
              cmp Bexpr.Eq ic (lit (Value.Int 7) Value.Int_t) );
        dtype = Value.Bool_t };
      { Bexpr.node = Bexpr.In_list (ic, [ lit (Value.Int 5) Value.Int_t;
                                          lit (Value.Int 10) Value.Int_t ]);
        dtype = Value.Bool_t };
      { Bexpr.node = Bexpr.Is_null (false, ic); dtype = Value.Bool_t };
      { Bexpr.node = Bexpr.Is_null (true, fc); dtype = Value.Bool_t } ]

let test_col_pred_rejects () =
  let cols = fixture () in
  let ic = col 0 Value.Int_t in
  let rejected e =
    Alcotest.(check bool) (Bexpr.to_string e) true (Col_pred.compile cols [||] e = None)
  in
  (* NOT is not compositional in the is-true encoding. *)
  rejected { Bexpr.node = Bexpr.Not (cmp Bexpr.Gt ic (lit (Value.Int 0) Value.Int_t));
             dtype = Value.Bool_t };
  (* Column-vs-column has no constant side. *)
  rejected (cmp Bexpr.Eq ic (col 1 Value.Float_t));
  (* LIKE now compiles over plain strings too (per-row pattern match on
     the raw array); it must still agree with the row-wise reference. *)
  Quill_storage.Column.enable_dict := false;
  let plain =
    [| Quill_storage.Column.of_values Value.Str_t
         [| Value.Str "aa"; Value.Str "bb"; Value.Null |] |]
  in
  Quill_storage.Column.enable_dict := true;
  check_pred_matches plain
    { Bexpr.node = Bexpr.Like (col 0 Value.Str_t, "b%"); dtype = Value.Bool_t }

let test_dict_predicates () =
  (* Low-cardinality strings dictionary-encode; equality, ranges, IN and
     LIKE all run on codes and must match the row-wise reference. *)
  let vals =
    Array.init 60 (fun i ->
        if i mod 13 = 0 then Value.Null
        else Value.Str [| "apple"; "banana"; "cherry"; "date" |].(i mod 4))
  in
  let c = Quill_storage.Column.of_values Value.Str_t vals in
  Alcotest.(check bool) "is dict" true (Quill_storage.Column.dict_parts c <> None);
  let cols = [| c |] in
  let sc = col 0 Value.Str_t in
  let sl v = lit (Value.Str v) Value.Str_t in
  List.iter (check_pred_matches cols)
    [ cmp Bexpr.Eq sc (sl "banana");
      cmp Bexpr.Eq sc (sl "missing");
      cmp Bexpr.Neq sc (sl "cherry");
      cmp Bexpr.Lt sc (sl "cherry");
      cmp Bexpr.Le sc (sl "banana");
      cmp Bexpr.Gt sc (sl "banana");
      cmp Bexpr.Ge sc (sl "bb");  (* between dictionary entries *)
      cmp Bexpr.Lt sc (sl "aa");
      { Bexpr.node = Bexpr.Like (sc, "%an%"); dtype = Value.Bool_t };
      { Bexpr.node = Bexpr.Like (sc, "d%"); dtype = Value.Bool_t };
      { Bexpr.node = Bexpr.In_list (sc, [ sl "apple"; sl "date"; sl "nope" ]);
        dtype = Value.Bool_t } ]

let test_col_pred_params () =
  let cols = fixture () in
  let e = cmp Bexpr.Gt (col 0 Value.Int_t) { Bexpr.node = Bexpr.Param 0; dtype = Value.Int_t } in
  match Col_pred.compile cols [| Value.Int 6 |] e with
  | None -> Alcotest.fail "param bound should compile"
  | Some fast ->
      Alcotest.(check bool) "row0 (5>6)" false (fast 0);
      Alcotest.(check bool) "row3 (10>6)" true (fast 3);
      Alcotest.(check bool) "null row" false (fast 1)

let test_col_expr_agreement () =
  let cols = fixture () in
  let rows = rows_of cols in
  (* (c0 * 2 + 1) as int; (c1 * c1 - 0.5) as float; mixed c0 * c1. *)
  let ie =
    { Bexpr.node =
        Bexpr.Arith
          ( Bexpr.Add,
            { Bexpr.node = Bexpr.Arith (Bexpr.Mul, col 0 Value.Int_t, lit (Value.Int 2) Value.Int_t);
              dtype = Value.Int_t },
            lit (Value.Int 1) Value.Int_t );
      dtype = Value.Int_t }
  in
  let fe =
    { Bexpr.node =
        Bexpr.Arith
          ( Bexpr.Sub,
            { Bexpr.node = Bexpr.Arith (Bexpr.Mul, col 1 Value.Float_t, col 1 Value.Float_t);
              dtype = Value.Float_t },
            lit (Value.Float 0.5) Value.Float_t );
      dtype = Value.Float_t }
  in
  let mixed =
    { Bexpr.node = Bexpr.Arith (Bexpr.Mul, col 0 Value.Int_t, col 1 Value.Float_t);
      dtype = Value.Float_t }
  in
  (match Col_expr.compile_int cols [||] ie with
  | None -> Alcotest.fail "int expr should compile"
  | Some f ->
      let valid = Col_expr.valid_fn cols ie in
      Array.iteri
        (fun i row ->
          match Bexpr.eval ~row ~params:[||] ie with
          | Value.Null -> Alcotest.(check bool) "invalid" false (valid i)
          | Value.Int expect ->
              Alcotest.(check bool) "valid" true (valid i);
              Alcotest.(check int) "value" expect (f i)
          | _ -> Alcotest.fail "type")
        rows);
  List.iter
    (fun e ->
      match Col_expr.compile_float cols [||] e with
      | None -> Alcotest.failf "float expr should compile"
      | Some f ->
          let valid = Col_expr.valid_fn cols e in
          Array.iteri
            (fun i row ->
              match Bexpr.eval ~row ~params:[||] e with
              | Value.Null -> Alcotest.(check bool) "invalid" false (valid i)
              | v ->
                  Alcotest.(check bool) "valid" true (valid i);
                  Alcotest.(check (float 1e-12)) "value" (Value.to_float v) (f i)
              )
            rows)
    [ fe; mixed ]

let test_col_expr_rejects_strings () =
  let cols = fixture () in
  Alcotest.(check bool) "string col" true
    (Col_expr.compile_float cols [||] (col 2 Value.Str_t) = None)

(* Fused scan->aggregate must equal the general staged path, including on
   empty and all-null inputs. *)
let test_fusion_agrees_with_general () =
  let db = Quill.Db.create () in
  let schema =
    Schema.create [ Schema.col "a" Value.Int_t; Schema.col "x" Value.Float_t ]
  in
  let t = Table.create ~name:"ft" schema in
  let rng = Quill_util.Rng.create 5 in
  for _ = 1 to 5000 do
    Table.insert t
      [| (if Quill_util.Rng.int rng 10 = 0 then Value.Null
          else Value.Int (Quill_util.Rng.int rng 100));
         (if Quill_util.Rng.int rng 10 = 0 then Value.Null
          else Value.Float (Quill_util.Rng.float rng)) |]
  done;
  Quill_storage.Catalog.add (Quill.Db.catalog db) t;
  let queries =
    [ "SELECT count(*), count(a), sum(a), min(a), max(a), avg(x) FROM ft";
      "SELECT sum(a * 2 + 1) FROM ft WHERE a > 50";
      "SELECT sum(x * x) FROM ft WHERE a >= 10 AND a < 60";
      "SELECT count(*) FROM ft WHERE a = 1000" (* empty match *) ]
  in
  List.iter
    (fun sql ->
      let fused = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Compiled sql) in
      Codegen.enable_scan_agg_fusion := false;
      let general = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Compiled sql) in
      Codegen.enable_scan_agg_fusion := true;
      Array.iteri
        (fun j g ->
          match (g, fused.(0).(j)) with
          | Value.Float x, Value.Float y ->
              Alcotest.(check bool) sql true
                (Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x))
          | g, f -> Alcotest.check Tutil.value_testable sql g f)
        general.(0))
    queries

let test_fusion_on_empty_table () =
  let db = Quill.Db.create () in
  ignore (Quill.Db.exec db "CREATE TABLE e (a INT)");
  let r = Quill.Db.query db ~engine:Quill.Db.Compiled "SELECT count(*), sum(a) FROM e" in
  Alcotest.check Tutil.value_testable "count 0" (Value.Int 0) (Table.get r 0 0);
  Alcotest.check Tutil.value_testable "sum null" Value.Null (Table.get r 0 1)

let test_compiled_reuse_across_params () =
  (* One staged plan executed with different parameter vectors. *)
  let db = Tutil.random_db ~seed:10 ~rows:300 in
  let pplan =
    Quill.Db.plan db ~params:[| Value.Int 0 |] "SELECT count(*) FROM r WHERE k > $1"
  in
  let compiled =
    Codegen.compile (Quill.Db.catalog db) pplan
  in
  let count p =
    match
      (Quill_util.Vec.get (compiled Quill_exec.Governor.none [| Value.Int p |]) 0).(0)
    with
    | Value.Int n -> n
    | _ -> Alcotest.fail "type"
  in
  let reference p =
    Table.get
      (Quill.Db.query db ~params:[| Value.Int p |] ~engine:Quill.Db.Volcano
         "SELECT count(*) FROM r WHERE k > $1")
      0 0
  in
  List.iter
    (fun p -> Alcotest.check Tutil.value_testable "param reuse" (reference p) (Value.Int (count p)))
    [ 0; 5; 10; 19; -1 ]

let test_limit_early_exit () =
  (* The compiled engine's Limit raises through the scan loop; repeated
     runs of the same staged plan must reset the counters. *)
  let db = Tutil.random_db ~seed:12 ~rows:500 in
  let pplan = Quill.Db.plan db "SELECT id FROM r ORDER BY id LIMIT 3" in
  let compiled = Codegen.compile (Quill.Db.catalog db) pplan in
  for _ = 1 to 3 do
    Alcotest.(check int)
      "limit rows" 3
      (Quill_util.Vec.length (compiled Quill_exec.Governor.none [||]))
  done

let prop_fast_pred_random =
  Tutil.qtest ~count:200 "Col_pred fast path = interpreter on random data"
    QCheck2.Gen.(
      let* n = int_range 1 60 in
      let* vals = list_repeat n (Tutil.value_of_dtype ~null_weight:15 Value.Int_t) in
      let* threshold = int_range (-1000) 1000 in
      let* op = oneofl [ Bexpr.Eq; Bexpr.Lt; Bexpr.Le; Bexpr.Gt; Bexpr.Ge; Bexpr.Neq ] in
      pure (vals, threshold, op))
    (fun (vals, threshold, op) ->
      let c = Column.of_values Value.Int_t (Array.of_list vals) in
      let e = cmp op (col 0 Value.Int_t) (lit (Value.Int threshold) Value.Int_t) in
      match Col_pred.compile [| c |] [||] e with
      | None -> false
      | Some fast ->
          List.for_all2
            (fun i v -> fast i = Bexpr.eval_pred ~row:[| v |] ~params:[||] e)
            (List.init (List.length vals) Fun.id)
            vals)

let () =
  Alcotest.run "compile"
    [
      ( "col_pred",
        [
          Alcotest.test_case "supported shapes" `Quick test_col_pred_shapes;
          Alcotest.test_case "rejected shapes" `Quick test_col_pred_rejects;
          Alcotest.test_case "parameter bounds" `Quick test_col_pred_params;
          Alcotest.test_case "dictionary predicates" `Quick test_dict_predicates;
          prop_fast_pred_random;
        ] );
      ( "col_expr",
        [
          Alcotest.test_case "agreement" `Quick test_col_expr_agreement;
          Alcotest.test_case "rejects strings" `Quick test_col_expr_rejects_strings;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "fused = general" `Quick test_fusion_agrees_with_general;
          Alcotest.test_case "empty table" `Quick test_fusion_on_empty_table;
        ] );
      ( "staging",
        [
          Alcotest.test_case "reuse across params" `Quick test_compiled_reuse_across_params;
          Alcotest.test_case "limit early exit" `Quick test_limit_early_exit;
        ] );
    ]
