(* End-to-end API tests: DDL, DML, COPY, EXPLAIN, UDFs, parameters and
   error reporting through the public facade. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table

let check_rows = Alcotest.(check int)

let fresh () =
  let db = Quill.Db.create () in
  ignore (Quill.Db.exec db "CREATE TABLE emp (id INT NOT NULL, name TEXT, dept TEXT, salary FLOAT, hired DATE)");
  ignore
    (Quill.Db.exec db
       "INSERT INTO emp VALUES \
        (1, 'ada', 'eng', 120.0, DATE '2020-01-15'), \
        (2, 'grace', 'eng', 130.0, DATE '2019-06-01'), \
        (3, 'alan', 'ops', 90.0, DATE '2021-02-28'), \
        (4, 'edsger', 'ops', NULL, DATE '2018-11-11'), \
        (5, 'barbara', 'mgmt', 150.0, DATE '2017-03-03')");
  db

let test_create_insert_select () =
  let db = fresh () in
  let r = Quill.Db.query db "SELECT name FROM emp WHERE dept = 'eng' ORDER BY name" in
  check_rows "two engineers" 2 (Table.row_count r);
  Alcotest.check Tutil.value_testable "first" (Value.Str "ada") (Table.get r 0 0)

let test_insert_column_list_and_defaults () =
  let db = fresh () in
  (match Quill.Db.exec db "INSERT INTO emp (id, name) VALUES (6, 'tony')" with
  | Quill.Db.Affected 1 -> ()
  | _ -> Alcotest.fail "affected");
  let r = Quill.Db.query db "SELECT dept, salary FROM emp WHERE id = 6" in
  Alcotest.check Tutil.value_testable "dept null" Value.Null (Table.get r 0 0)

let test_insert_errors () =
  let db = fresh () in
  let expect_err sql =
    Alcotest.(check bool) sql true
      (try
         ignore (Quill.Db.exec db sql);
         false
       with Quill.Db.Error _ -> true)
  in
  expect_err "INSERT INTO emp (id) VALUES (NULL)";
  expect_err "INSERT INTO emp (id, name) VALUES (7)";
  expect_err "INSERT INTO emp (id, name) VALUES ('x', 'y')";
  expect_err "INSERT INTO missing VALUES (1)";
  expect_err "INSERT INTO emp (nope) VALUES (1)"

let test_drop () =
  let db = fresh () in
  ignore (Quill.Db.exec db "DROP TABLE emp");
  Alcotest.(check bool) "gone" true
    (try
       ignore (Quill.Db.query db "SELECT * FROM emp");
       false
     with Quill.Db.Error _ -> true)

let test_copy_roundtrip () =
  let db = fresh () in
  let path = Filename.temp_file "quill_copy" ".csv" in
  let oc = open_out path in
  output_string oc "id,name,dept,salary,hired\n10,zoe,eng,99.5,2022-05-05\n11,yan,,\"\",2022-06-06\n";
  close_out oc;
  (match Quill.Db.exec db (Printf.sprintf "COPY emp FROM '%s'" path) with
  | Quill.Db.Affected 2 -> ()
  | _ -> Alcotest.fail "copy count");
  Sys.remove path;
  let r = Quill.Db.query db "SELECT name, dept FROM emp WHERE id = 11" in
  Alcotest.check Tutil.value_testable "empty -> null" Value.Null (Table.get r 0 1)

let test_params () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      ~params:[| Value.Float 100.0; Value.Str "eng" |]
      "SELECT name FROM emp WHERE salary > $1 AND dept = $2 ORDER BY name"
  in
  check_rows "parameterized" 2 (Table.row_count r)

let test_udf_end_to_end () =
  let db = fresh () in
  Quill.Db.register_udf db ~name:"bonus" ~args:[ Value.Float_t; Value.Float_t ]
    ~ret:Value.Float_t (function
    | [| Value.Float s; Value.Float pct |] -> Value.Float (s *. pct /. 100.0)
    | [| Value.Null; _ |] | [| _; Value.Null |] -> Value.Null
    | _ -> invalid_arg "bonus");
  let r =
    Quill.Db.query db
      "SELECT name, bonus(salary, 10.0) AS b FROM emp WHERE bonus(salary, 10.0) > 12.0 \
       ORDER BY b DESC"
  in
  check_rows "udf rows" 2 (Table.row_count r);
  Alcotest.check Tutil.value_testable "top" (Value.Str "barbara") (Table.get r 0 0);
  (* UDFs work identically across engines. *)
  let sql = "SELECT name FROM emp WHERE bonus(salary, 10.0) > 9.5" in
  let v = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
  let c = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Compiled sql) in
  Alcotest.(check bool) "udf engines agree" true (Tutil.same_rows_unordered v c)

let test_explain () =
  let db = fresh () in
  let s = Quill.Db.explain db "SELECT dept, count(*) FROM emp GROUP BY dept" in
  Alcotest.(check bool) "mentions scan" true
    (String.length s > 0
    &&
    let contains needle =
      let nh = String.length s and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
      go 0
    in
    contains "Scan emp" && contains "Agg");
  let s2 = Quill.Db.explain db ~analyze:true "SELECT * FROM emp WHERE salary > 100.0" in
  let contains needle =
    let nh = String.length s2 and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s2 i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "analyze shows actuals" true (contains "actual rows")

let test_delete () =
  let db = fresh () in
  (match Quill.Db.exec db "DELETE FROM emp WHERE dept = 'ops'" with
  | Quill.Db.Affected 2 -> ()
  | Quill.Db.Affected n -> Alcotest.failf "deleted %d" n
  | _ -> Alcotest.fail "delete");
  check_rows "remaining" 3 (Table.row_count (Quill.Db.query db "SELECT id FROM emp"));
  (* NULL predicate rows are kept (salary IS NULL rows don't match salary < 100). *)
  let db2 = fresh () in
  (match Quill.Db.exec db2 "DELETE FROM emp WHERE salary < 100.0" with
  | Quill.Db.Affected 1 -> ()
  | _ -> Alcotest.fail "null rows kept");
  (* Unconditional delete empties the table. *)
  (match Quill.Db.exec db2 "DELETE FROM emp" with
  | Quill.Db.Affected 4 -> ()
  | _ -> Alcotest.fail "delete all");
  check_rows "empty" 0 (Table.row_count (Quill.Db.query db2 "SELECT id FROM emp"))

let test_update () =
  let db = fresh () in
  (match Quill.Db.exec db "UPDATE emp SET salary = salary * 1.1 WHERE dept = 'eng'" with
  | Quill.Db.Affected 2 -> ()
  | _ -> Alcotest.fail "update count");
  let r = Quill.Db.query db "SELECT salary FROM emp WHERE name = 'ada'" in
  Alcotest.check Tutil.value_testable "raised" (Value.Float 132.0) (Table.get r 0 0);
  (* Multi-assignment evaluates against the pre-update row. *)
  ignore (Quill.Db.exec db "CREATE TABLE p (a INT, b INT)");
  ignore (Quill.Db.exec db "INSERT INTO p VALUES (1, 10)");
  ignore (Quill.Db.exec db "UPDATE p SET a = b, b = a");
  let r = Quill.Db.query db "SELECT a, b FROM p" in
  Alcotest.check Tutil.value_testable "swap a" (Value.Int 10) (Table.get r 0 0);
  Alcotest.check Tutil.value_testable "swap b" (Value.Int 1) (Table.get r 0 1);
  (* Type errors and NOT NULL violations are rejected. *)
  Alcotest.(check bool) "bad type" true
    (try
       ignore (Quill.Db.exec db "UPDATE emp SET salary = 'nope'");
       false
     with Quill.Db.Error _ -> true);
  Alcotest.(check bool) "not null" true
    (try
       ignore (Quill.Db.exec db "UPDATE emp SET id = NULL");
       false
     with Quill.Db.Error _ -> true);
  (* The plan cache sees the catalog bump: cached plans refresh. *)
  let n1 = Table.row_count (Quill.Db.query_adaptive db "SELECT id FROM emp WHERE salary > 140.0") in
  ignore (Quill.Db.exec db "UPDATE emp SET salary = 200.0 WHERE name = 'alan'");
  let n2 = Table.row_count (Quill.Db.query_adaptive db "SELECT id FROM emp WHERE salary > 140.0") in
  Alcotest.(check int) "before" 2 n1;
  Alcotest.(check int) "after" 3 n2

let test_coalesce_nullif () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT name, coalesce(salary, 0.0) AS s FROM emp ORDER BY name LIMIT 3"
  in
  check_rows "rows" 3 (Table.row_count r);
  let r2 = Quill.Db.query db "SELECT coalesce(NULL, 5) AS x, nullif(3, 3) AS y, nullif(4, 3) AS z" in
  Alcotest.check Tutil.value_testable "coalesce" (Value.Int 5) (Table.get r2 0 0);
  Alcotest.check Tutil.value_testable "nullif eq" Value.Null (Table.get r2 0 1);
  Alcotest.check Tutil.value_testable "nullif ne" (Value.Int 4) (Table.get r2 0 2)

let test_string_builtins () =
  let db = fresh () in
  let r =
    Quill.Db.query db
      "SELECT concat('a', 'b') AS c, trim('  x  ') AS t, replace('banana', 'an', 'AN') AS rep"
  in
  Alcotest.check Tutil.value_testable "concat" (Value.Str "ab") (Table.get r 0 0);
  Alcotest.check Tutil.value_testable "trim" (Value.Str "x") (Table.get r 0 1);
  Alcotest.check Tutil.value_testable "replace" (Value.Str "bANANa") (Table.get r 0 2)

let test_left_join_api () =
  let db = fresh () in
  ignore (Quill.Db.exec db "CREATE TABLE dept (name TEXT, floor INT)");
  ignore (Quill.Db.exec db "INSERT INTO dept VALUES ('eng', 2), ('ops', 3)");
  let r =
    Quill.Db.query db
      "SELECT emp.name, dept.floor FROM emp LEFT JOIN dept ON emp.dept = dept.name        ORDER BY emp.name"
  in
  check_rows "all employees" 5 (Table.row_count r);
  (* barbara's mgmt dept is unmatched -> NULL floor *)
  let barbara =
    List.find
      (fun row -> Value.equal row.(0) (Value.Str "barbara"))
      (Table.to_row_list r)
  in
  Alcotest.check Tutil.value_testable "padded" Value.Null barbara.(1)

let test_create_table_as () =
  let db = fresh () in
  (match Quill.Db.exec db
           "CREATE TABLE dept_pay AS SELECT dept, count(*) AS n, avg(salary) AS avg_sal \
            FROM emp GROUP BY dept"
   with
  | Quill.Db.Affected 3 -> ()
  | _ -> Alcotest.fail "ctas count");
  let r = Quill.Db.query db "SELECT dept, n FROM dept_pay ORDER BY dept" in
  check_rows "queried back" 3 (Table.row_count r);
  Alcotest.check Tutil.value_testable "eng count" (Value.Int 2) (Table.get r 0 1);
  (* Existing name rejected. *)
  Alcotest.(check bool) "duplicate" true
    (try
       ignore (Quill.Db.exec db "CREATE TABLE dept_pay AS SELECT 1 AS one");
       false
     with Quill.Db.Error _ -> true)

let test_subqueries () =
  let db = fresh () in
  ignore (Quill.Db.exec db "CREATE TABLE depts (name TEXT, budget FLOAT)");
  ignore (Quill.Db.exec db "INSERT INTO depts VALUES ('eng', 500.0), ('mgmt', 100.0)");
  (* IN (SELECT ...) *)
  let r = Quill.Db.query db
      "SELECT name FROM emp WHERE dept IN (SELECT name FROM depts) ORDER BY name" in
  check_rows "in subquery" 3 (Table.row_count r);
  (* NOT IN with a NULL-free subquery. *)
  let r = Quill.Db.query db
      "SELECT name FROM emp WHERE dept NOT IN (SELECT name FROM depts)" in
  check_rows "not in" 2 (Table.row_count r);
  (* Scalar subquery in WHERE and SELECT. *)
  let r = Quill.Db.query db
      "SELECT name FROM emp WHERE salary > (SELECT avg(salary) FROM emp)" in
  check_rows "scalar in where" 2 (Table.row_count r);
  let r = Quill.Db.query db "SELECT (SELECT min(budget) FROM depts) AS mb" in
  Alcotest.check Tutil.value_testable "scalar in select" (Value.Float 100.0) (Table.get r 0 0);
  (* EXISTS / NOT EXISTS. *)
  let r = Quill.Db.query db
      "SELECT name FROM emp WHERE EXISTS (SELECT name FROM depts WHERE budget > 400.0)" in
  check_rows "exists" 5 (Table.row_count r);
  let r = Quill.Db.query db
      "SELECT name FROM emp WHERE NOT EXISTS (SELECT name FROM depts WHERE budget > 9999.0)" in
  check_rows "not exists" 5 (Table.row_count r);
  (* Nested subqueries. *)
  let r = Quill.Db.query db
      "SELECT name FROM emp WHERE salary > (SELECT avg(budget) FROM depts        WHERE budget > (SELECT min(budget) FROM depts))" in
  check_rows "nested" 0 (Table.row_count r);
  (* Engines agree; adaptive path fills cells per run. *)
  let sql = "SELECT name FROM emp WHERE dept IN (SELECT name FROM depts)" in
  let reference = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
  List.iter
    (fun e ->
      Alcotest.(check bool) (Quill.Db.engine_name e) true
        (Tutil.same_rows_unordered reference (Tutil.table_rows (Quill.Db.query db ~engine:e sql))))
    [ Quill.Db.Vectorized; Quill.Db.Compiled ];
  for _ = 1 to 3 do
    Alcotest.(check bool) "adaptive" true
      (Tutil.same_rows_unordered reference (Tutil.table_rows (Quill.Db.query_adaptive db sql)))
  done;
  (* Subquery results must refresh after DML on the inner table. *)
  ignore (Quill.Db.exec db "INSERT INTO depts VALUES ('ops', 50.0)");
  let r = Quill.Db.query db sql in
  check_rows "sees dml" 5 (Table.row_count r)

let test_subquery_errors () =
  let db = fresh () in
  let expect_err needle sql =
    try
      ignore (Quill.Db.query db sql);
      Alcotest.failf "expected error for %s" sql
    with Quill.Db.Error m ->
      let contains =
        let nh = String.length m and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub m i nn = needle || go (i + 1)) in
        go 0
      in
      if not contains then Alcotest.failf "error %S lacks %S" m needle
  in
  (* Correlated subqueries are rejected at bind time. *)
  expect_err "unknown column"
    "SELECT name FROM emp e WHERE EXISTS (SELECT 1 FROM emp x WHERE x.salary > e.salary)";
  (* Multi-column subqueries are rejected. *)
  expect_err "one column" "SELECT name FROM emp WHERE id IN (SELECT id, salary FROM emp)";
  expect_err "one column" "SELECT (SELECT id, salary FROM emp) FROM emp";
  (* Scalar subquery with several rows fails at runtime. *)
  expect_err "more than one row"
    "SELECT name FROM emp WHERE salary > (SELECT salary FROM emp WHERE dept = 'eng')";
  (* Type mismatch between subject and subquery column. *)
  expect_err "incompatible" "SELECT name FROM emp WHERE id IN (SELECT name FROM emp)"

let test_save_load () =
  let db = fresh () in
  ignore (Quill.Db.exec db "CREATE INDEX ON emp (id)");
  ignore (Quill.Db.exec db "CREATE TABLE notes (id INT, txt TEXT)");
  ignore (Quill.Db.exec db "INSERT INTO notes VALUES (1, 'quo''ted, commas'), (2, NULL)");
  let dir = Filename.temp_file "quill_db" "" in
  Sys.remove dir;
  Quill.Db.save db dir;
  let db2 = Quill.Db.load dir in
  (* Data round-trips exactly. *)
  List.iter
    (fun sql ->
      let a = Tutil.table_rows (Quill.Db.query db sql) in
      let b = Tutil.table_rows (Quill.Db.query db2 sql) in
      Alcotest.(check bool) sql true (Tutil.same_rows_ordered a b))
    [ "SELECT * FROM emp ORDER BY id"; "SELECT * FROM notes ORDER BY id" ];
  (* Schema constraints and indexes survive. *)
  Alcotest.(check bool) "not null kept" true
    (try
       ignore (Quill.Db.exec db2 "INSERT INTO emp (id) VALUES (NULL)");
       false
     with Quill.Db.Error _ -> true);
  (* The index definition is in the manifest (the picker won't choose an
     index scan on a 5-row table, so check the declaration itself). *)
  let ic = open_in (Filename.concat dir "_manifest.sql") in
  let manifest = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains needle =
    let nh = String.length manifest and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub manifest i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "index def kept" true (contains "CREATE INDEX ON emp (id)");
  (* Clean up. *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let str_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let rm_dir dir =
  let rec go path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> go (Filename.concat path f)) (Sys.readdir path);
        try Sys.rmdir path with Sys_error _ -> ()
      end
      else Sys.remove path
  in
  go dir

let fresh_dir () =
  let dir = Filename.temp_file "quill_db" "" in
  Sys.remove dir;
  dir

(* Save/load round-trips the hard cases: NULLs in every column, strings
   with commas, quotes and embedded newlines, a dictionary-encoded
   column, and the result is identical under all three engines. *)
let test_save_load_rich_roundtrip () =
  let module Schema = Quill_storage.Schema in
  let db = Quill.Db.create () in
  let cat = Quill.Db.catalog db in
  let t =
    Table.create ~name:"rich"
      (Schema.create
         [ Schema.col ~nullable:false "id" Value.Int_t;
           Schema.col "txt" Value.Str_t;
           Schema.col "num" Value.Float_t;
           Schema.col "flag" Value.Bool_t;
           Schema.col "day" Value.Date_t ])
  in
  Quill_storage.Catalog.add cat t;
  Table.insert t
    [| Value.Int 1; Value.Str "comma, \"quote\" and 'tick'"; Value.Float 12.25;
       Value.Bool true; Value.Date 9500 |];
  Table.insert t [| Value.Int 2; Value.Str "line\nbreak"; Value.Null; Value.Null; Value.Null |];
  Table.insert t
    [| Value.Int 3; Value.Str "plain"; Value.Float (-0.5); Value.Bool false; Value.Date 9000 |];
  (* few distinct strings over many rows: packs as a dictionary column *)
  let dt = Table.create ~name:"dicty" (Schema.create [ Schema.col "s" Value.Str_t ]) in
  Quill_storage.Catalog.add cat dt;
  for i = 0 to 199 do
    Table.insert dt
      [| Value.Str (match i mod 3 with 0 -> "red" | 1 -> "green" | _ -> "blue") |]
  done;
  Alcotest.(check bool) "source column is dict-encoded" true
    (Option.is_some (Quill_storage.Column.dict_parts (Table.column dt 0)));
  let dir = fresh_dir () in
  Quill.Db.save db dir;
  let db2 = Quill.Db.load dir in
  List.iter
    (fun eng ->
      Quill.Db.set_engine db2 eng;
      List.iter
        (fun sql ->
          let a = Tutil.table_rows (Quill.Db.query db sql) in
          let b = Tutil.table_rows (Quill.Db.query db2 sql) in
          Alcotest.(check bool)
            (Quill.Db.engine_name eng ^ ": " ^ sql)
            true
            (Tutil.same_rows_ordered a b))
        [ "SELECT * FROM rich ORDER BY id";
          "SELECT s, count(*) FROM dicty GROUP BY s ORDER BY s" ])
    [ Quill.Db.Volcano; Quill.Db.Vectorized; Quill.Db.Compiled ];
  rm_dir dir

(* Index declarations survive a save/load cycle: the reloaded session
   re-declares them (checked by saving it again) and serves the same
   results. *)
let test_load_rebuilds_indexes () =
  let db = fresh () in
  ignore (Quill.Db.exec db "CREATE INDEX ON emp (id)");
  let dir = fresh_dir () in
  Quill.Db.save db dir;
  let db2 = Quill.Db.load dir in
  let dir2 = fresh_dir () in
  Quill.Db.save db2 dir2;
  let ic = open_in (Filename.concat dir2 "_manifest.sql") in
  let manifest = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool) "index re-declared" true
    (str_contains manifest "CREATE INDEX ON emp (id)");
  let a = Tutil.table_rows (Quill.Db.query db "SELECT name FROM emp WHERE id = 3") in
  let b = Tutil.table_rows (Quill.Db.query db2 "SELECT name FROM emp WHERE id = 3") in
  Alcotest.(check bool) "indexed lookup agrees" true (Tutil.same_rows_ordered a b);
  rm_dir dir;
  rm_dir dir2

(* Regression: [load] failures are catchable {!Quill.Db.Error}s naming
   the offending file — never a bare [Sys_error]. *)
let test_load_errors () =
  let expect_error what thunk fragment =
    match thunk () with
    | _ -> Alcotest.failf "%s: expected an error" what
    | exception Quill.Db.Error m ->
        if not (str_contains m fragment) then
          Alcotest.failf "%s: error %S lacks %S" what m fragment
  in
  expect_error "missing directory"
    (fun () -> Quill.Db.load "/nonexistent/quill-db-xyz")
    "/nonexistent/quill-db-xyz";
  let db = fresh () in
  let dir = fresh_dir () in
  Quill.Db.save db dir;
  let emp_csv = Filename.concat dir "emp.csv" in
  let ic = open_in_bin emp_csv in
  let orig = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* corruption is caught by the checksum manifest and names the file *)
  let oc = open_out_bin emp_csv in
  output_string oc (orig ^ "junk");
  close_out oc;
  expect_error "corrupt table file" (fun () -> Quill.Db.load dir) "emp.csv";
  let oc = open_out_bin emp_csv in
  output_string oc orig;
  close_out oc;
  (* a missing table file (without checksums to catch it first) *)
  Sys.remove (Filename.concat dir "_checksums");
  Sys.remove emp_csv;
  expect_error "missing table file" (fun () -> Quill.Db.load dir) "emp.csv";
  (* a missing manifest *)
  Sys.remove (Filename.concat dir "_manifest.sql");
  expect_error "missing manifest" (fun () -> Quill.Db.load dir) "_manifest.sql";
  rm_dir dir

let test_error_messages () =
  let db = fresh () in
  let check_msg sql fragment =
    try
      ignore (Quill.Db.exec db sql);
      Alcotest.failf "expected error for %s" sql
    with Quill.Db.Error m ->
      let contains =
        let nh = String.length m and nn = String.length fragment in
        let rec go i = i + nn <= nh && (String.sub m i nn = fragment || go (i + 1)) in
        go 0
      in
      if not contains then Alcotest.failf "error %S lacks %S" m fragment
  in
  check_msg "SELEKT 1" "parse error";
  check_msg "SELECT nope FROM emp" "unknown column";
  check_msg "SELECT id FROM emp WHERE name > 3" "bind error";
  check_msg "SELECT 1 / 0" "division by zero";
  check_msg "SELECT CAST('zz' AS INT)" "cast"

let test_runtime_error_via_table_data () =
  let db = fresh () in
  ignore (Quill.Db.exec db "CREATE TABLE z (a INT, b INT)");
  ignore (Quill.Db.exec db "INSERT INTO z VALUES (1, 0)");
  Alcotest.(check bool) "div by zero at runtime" true
    (try
       ignore (Quill.Db.query db "SELECT a / b FROM z");
       false
     with Quill.Db.Error _ -> true);
  (* Guarded division is fine. *)
  let r = Quill.Db.query db "SELECT CASE WHEN b <> 0 THEN a / b ELSE 0 END FROM z" in
  Alcotest.check Tutil.value_testable "guarded" (Value.Int 0) (Table.get r 0 0)

let test_analyze_api () =
  let db = fresh () in
  Quill.Db.analyze db "emp";
  (* analyzing a missing table errors cleanly *)
  Alcotest.(check bool) "missing" true
    (try
       Quill.Db.analyze db "nope";
       false
     with Invalid_argument _ | Quill.Db.Error _ -> true)

let test_engine_switching () =
  let db = fresh () in
  Quill.Db.set_engine db Quill.Db.Volcano;
  let a = Tutil.table_rows (Quill.Db.query db "SELECT id FROM emp") in
  Quill.Db.set_engine db Quill.Db.Compiled;
  let b = Tutil.table_rows (Quill.Db.query db "SELECT id FROM emp") in
  Alcotest.(check bool) "same" true (Tutil.same_rows_unordered a b)

let test_result_table_shape () =
  let db = fresh () in
  let r = Quill.Db.query db "SELECT id AS i, salary * 2 AS s2 FROM emp ORDER BY id LIMIT 2" in
  let names =
    List.map (fun c -> c.Quill_storage.Schema.name)
      (Quill_storage.Schema.columns (Table.schema r))
  in
  Alcotest.(check (list string)) "names" [ "i"; "s2" ] names;
  check_rows "limit" 2 (Table.row_count r)

let () =
  Alcotest.run "db"
    [
      ( "statements",
        [
          Alcotest.test_case "create/insert/select" `Quick test_create_insert_select;
          Alcotest.test_case "insert column list" `Quick test_insert_column_list_and_defaults;
          Alcotest.test_case "insert errors" `Quick test_insert_errors;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "copy" `Quick test_copy_roundtrip;
          Alcotest.test_case "create table as" `Quick test_create_table_as;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "save/load rich round-trip" `Quick
            test_save_load_rich_roundtrip;
          Alcotest.test_case "load rebuilds indexes" `Quick test_load_rebuilds_indexes;
          Alcotest.test_case "load errors" `Quick test_load_errors;
        ] );
      ( "features",
        [
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "udf" `Quick test_udf_end_to_end;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "engine switch" `Quick test_engine_switching;
          Alcotest.test_case "result shape" `Quick test_result_table_shape;
          Alcotest.test_case "analyze" `Quick test_analyze_api;
        ] );
      ( "dml",
        [
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "update" `Quick test_update;
        ] );
      ( "functions",
        [
          Alcotest.test_case "coalesce/nullif" `Quick test_coalesce_nullif;
          Alcotest.test_case "string builtins" `Quick test_string_builtins;
          Alcotest.test_case "left join api" `Quick test_left_join_api;
        ] );
      ( "subqueries",
        [
          Alcotest.test_case "semantics" `Quick test_subqueries;
          Alcotest.test_case "errors" `Quick test_subquery_errors;
        ] );
      ( "errors",
        [
          Alcotest.test_case "messages" `Quick test_error_messages;
          Alcotest.test_case "runtime" `Quick test_runtime_error_via_table_data;
        ] );
    ]
