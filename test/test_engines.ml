(* Whole-query engine agreement: Volcano, vectorized and compiled engines
   must return identical results on a battery of queries (ordered queries
   compare ordered; others as multisets), including with forced algorithm
   variants.  This is the correctness backbone of experiment E2. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Physical = Quill_optimizer.Physical
module Picker = Quill_optimizer.Picker

let engines = [ Quill.Db.Volcano; Quill.Db.Vectorized; Quill.Db.Compiled ]

let is_ordered sql =
  (* crude but sufficient for our battery *)
  let up = String.uppercase_ascii sql in
  let rec contains i =
    i + 8 <= String.length up && (String.sub up i 8 = "ORDER BY" || contains (i + 1))
  in
  contains 0

let check_query db sql =
  let reference = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
  List.iter
    (fun engine ->
      let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
      let ok =
        if is_ordered sql then Tutil.same_rows_ordered reference got
        else Tutil.same_rows_unordered reference got
      in
      if not ok then
        Alcotest.failf "engine %s disagrees on %s\nvolcano:\n%s\ngot:\n%s"
          (Quill.Db.engine_name engine) sql
          (Tutil.rows_to_string reference) (Tutil.rows_to_string got))
    engines

let battery =
  [
    "SELECT * FROM r";
    "SELECT id, v FROM r WHERE k > 10";
    "SELECT id FROM r WHERE k IS NULL";
    "SELECT id FROM r WHERE k IS NOT NULL AND v > 50.0";
    "SELECT id, v * 2 + 1 AS vv FROM r WHERE tag LIKE 'a%'";
    "SELECT id FROM r WHERE tag IN ('alpha', 'gamma', 'nope')";
    "SELECT id FROM r WHERE k BETWEEN 5 AND 10";
    "SELECT id FROM r WHERE dt >= DATE '1994-10-01' AND dt < DATE '1995-06-01'";
    "SELECT count(*) FROM r";
    "SELECT count(k), sum(k), avg(v), min(v), max(v) FROM r";
    "SELECT tag, count(*) AS n, sum(v) AS s FROM r GROUP BY tag ORDER BY tag";
    "SELECT k, count(*) FROM r GROUP BY k HAVING count(*) > 2";
    "SELECT count(DISTINCT k) FROM r";
    "SELECT DISTINCT tag FROM r";
    "SELECT r.id, s.w FROM r, s WHERE r.id = s.id";
    "SELECT r.id, s.w FROM r JOIN s ON r.k = s.k WHERE s.w > 50";
    "SELECT r.id, s.id FROM r, s WHERE r.k = s.k AND r.v > s.w";
    "SELECT r.tag, count(*) FROM r, s WHERE r.id = s.id GROUP BY r.tag";
    "SELECT id, v FROM r ORDER BY v DESC, id LIMIT 7";
    "SELECT id FROM r ORDER BY id LIMIT 5 OFFSET 3";
    "SELECT id, CASE WHEN k > 10 THEN 'hi' WHEN k > 5 THEN 'mid' ELSE 'lo' END AS bucket \
     FROM r WHERE k IS NOT NULL ORDER BY id";
    "SELECT sub.t, sub.n FROM (SELECT tag AS t, count(*) AS n FROM r GROUP BY tag) sub \
     WHERE sub.n > 1";
    "SELECT a.id FROM r a, r b WHERE a.id = b.id AND a.tag = 'alpha'";
    "SELECT upper(tag), length(tag) FROM r WHERE length(tag) > 4";
    "SELECT id, year(dt), month(dt) FROM r ORDER BY 2, 3, 1 LIMIT 10";
    "SELECT 1 + 2 AS three";
    "SELECT k, v FROM r WHERE NOT (k > 10 OR v < 20.0)";
    "SELECT r.id, s.w FROM r LEFT JOIN s ON r.id = s.id ORDER BY 1, 2";
    "SELECT r.tag, count(s.id) FROM r LEFT JOIN s ON r.k = s.k GROUP BY r.tag";
    "SELECT r.id FROM r LEFT JOIN s ON r.id = s.id WHERE s.id IS NULL";
    "SELECT id FROM r WHERE k IN (SELECT k FROM s WHERE w > 50)";
    "SELECT id FROM r WHERE v > (SELECT avg(w) FROM s)";
    "SELECT id FROM r WHERE EXISTS (SELECT id FROM s WHERE w > 95)";
    "SELECT id, row_number() OVER (ORDER BY v DESC, id) AS rn FROM r \
     WHERE v IS NOT NULL ORDER BY rn LIMIT 10";
    "SELECT tag, k, sum(v) OVER (PARTITION BY tag ORDER BY id) AS run FROM r \
     WHERE k IS NOT NULL ORDER BY tag, id LIMIT 15";
    "SELECT coalesce(k, -1) AS k2, count(*) FROM r GROUP BY coalesce(k, -1) ORDER BY k2";
  ]

(* Reference LEFT JOIN via nested loops over raw rows. *)
let ref_left_join db on_match =
  let r = Quill_storage.Catalog.find_exn (Quill.Db.catalog db) "r" in
  let s = Quill_storage.Catalog.find_exn (Quill.Db.catalog db) "s" in
  let out = ref [] in
  List.iter
    (fun lrow ->
      let matches =
        List.filter (fun rrow -> on_match lrow rrow) (Table.to_row_list s)
      in
      if matches = [] then
        out := Array.append lrow (Array.make 3 Value.Null) :: !out
      else List.iter (fun m -> out := Array.append lrow m :: !out) matches)
    (Table.to_row_list r);
  Array.of_list (List.rev !out)

let test_left_join_semantics () =
  let db = Tutil.random_db ~seed:41 ~rows:80 in
  let sql = "SELECT * FROM r LEFT JOIN s ON r.id = s.id" in
  let expect =
    ref_left_join db (fun l r ->
        (not (Value.is_null l.(0))) && (not (Value.is_null r.(0))) && Value.equal l.(0) r.(0))
  in
  List.iter
    (fun engine ->
      let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
      if not (Tutil.same_rows_unordered expect got) then
        Alcotest.failf "left join wrong on %s" (Quill.Db.engine_name engine))
    engines

let test_left_join_null_keys_padded () =
  let db = Tutil.random_db ~seed:42 ~rows:60 in
  (* k is nullable on both sides: left rows with NULL k must appear padded. *)
  let sql = "SELECT r.id, s.id FROM r LEFT JOIN s ON r.k = s.k" in
  let left_ids =
    Tutil.table_rows (Quill.Db.query db "SELECT id FROM r")
    |> Array.to_list |> List.map (fun row -> row.(0)) |> List.sort_uniq compare
  in
  List.iter
    (fun engine ->
      let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
      let got_ids =
        Array.to_list got |> List.map (fun row -> row.(0)) |> List.sort_uniq compare
      in
      Alcotest.(check bool)
        (Printf.sprintf "all left ids preserved (%s)" (Quill.Db.engine_name engine))
        true (got_ids = left_ids))
    engines

let test_left_join_forced_algos () =
  let db = Tutil.random_db ~seed:43 ~rows:120 in
  let sql = "SELECT r.id, s.w FROM r LEFT JOIN s ON r.id = s.id AND s.w > 40" in
  let reference = Tutil.table_rows (Quill.Db.query db sql) in
  Alcotest.(check int) "left preserved" 120 (Array.length reference);
  List.iter
    (fun join ->
      Quill.Db.set_options db
        { Picker.default_options with Picker.force_join = Some join };
      List.iter
        (fun engine ->
          let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
          Alcotest.(check bool)
            (Printf.sprintf "outer %s / %s" (Physical.join_algo_name join)
               (Quill.Db.engine_name engine))
            true
            (Tutil.same_rows_unordered reference got))
        engines)
    [ Physical.Hash_join; Physical.Merge_join; Physical.Block_nl ];
  Quill.Db.set_options db Picker.default_options

let test_left_join_where_vs_on () =
  let db = Tutil.random_db ~seed:44 ~rows:100 in
  (* WHERE on the right side rejects padded rows; ON does not. *)
  let on_rows =
    Table.row_count (Quill.Db.query db "SELECT r.id FROM r LEFT JOIN s ON r.id = s.id AND s.w > 1000")
  in
  let where_rows =
    Table.row_count
      (Quill.Db.query db "SELECT r.id FROM r LEFT JOIN s ON r.id = s.id WHERE s.w > 1000")
  in
  Alcotest.(check int) "ON keeps all left rows" 100 on_rows;
  Alcotest.(check int) "WHERE drops padded rows" 0 where_rows

let test_battery () =
  let db = Tutil.random_db ~seed:11 ~rows:300 in
  List.iter (check_query db) battery

let test_battery_other_seed () =
  let db = Tutil.random_db ~seed:77 ~rows:120 in
  List.iter (check_query db) battery

let test_empty_tables () =
  let db = Tutil.random_db ~seed:5 ~rows:0 in
  List.iter (check_query db)
    [ "SELECT * FROM r";
      "SELECT count(*) FROM r";
      "SELECT sum(k) FROM r";
      "SELECT tag, count(*) FROM r GROUP BY tag";
      "SELECT r.id FROM r, s WHERE r.id = s.id";
      "SELECT id FROM r ORDER BY id LIMIT 3" ]

let test_params_agree () =
  let db = Tutil.random_db ~seed:3 ~rows:200 in
  let params = [| Value.Int 10; Value.Str "alpha" |] in
  let sql = "SELECT id, k FROM r WHERE k > $1 AND tag = $2 ORDER BY id" in
  let reference = Tutil.table_rows (Quill.Db.query db ~params ~engine:Quill.Db.Volcano sql) in
  List.iter
    (fun engine ->
      let got = Tutil.table_rows (Quill.Db.query db ~params ~engine sql) in
      Alcotest.(check bool)
        (Quill.Db.engine_name engine) true
        (Tutil.same_rows_ordered reference got))
    engines

(* Forced join/agg algorithms and layouts must not change results. *)
let test_forced_algorithms () =
  let db = Tutil.random_db ~seed:9 ~rows:250 in
  let sql = "SELECT r.id, s.w FROM r, s WHERE r.id = s.id AND r.v > 30.0" in
  let agg_sql = "SELECT k, count(*), sum(v) FROM r GROUP BY k" in
  let reference = Tutil.table_rows (Quill.Db.query db sql) in
  let agg_ref = Tutil.table_rows (Quill.Db.query db agg_sql) in
  let opts = Picker.default_options in
  List.iter
    (fun join ->
      Quill.Db.set_options db { opts with Picker.force_join = Some join };
      List.iter
        (fun engine ->
          let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
          Alcotest.(check bool)
            (Printf.sprintf "join %s / %s" (Physical.join_algo_name join)
               (Quill.Db.engine_name engine))
            true
            (Tutil.same_rows_unordered reference got))
        engines)
    [ Physical.Hash_join; Physical.Merge_join; Physical.Block_nl ];
  List.iter
    (fun agg ->
      Quill.Db.set_options db { opts with Picker.force_agg = Some agg };
      let got = Tutil.table_rows (Quill.Db.query db agg_sql) in
      Alcotest.(check bool) (Physical.agg_algo_name agg) true
        (Tutil.same_rows_unordered agg_ref got))
    [ Physical.Hash_agg; Physical.Sort_agg ];
  List.iter
    (fun layout ->
      Quill.Db.set_options db { opts with Picker.force_layout = Some layout };
      List.iter
        (fun engine ->
          let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
          Alcotest.(check bool)
            (Printf.sprintf "layout %s / %s" (Physical.layout_name layout)
               (Quill.Db.engine_name engine))
            true
            (Tutil.same_rows_unordered reference got))
        engines)
    [ Physical.Row_layout; Physical.Col_layout ];
  Quill.Db.set_options db opts

(* TopK fusion on vs off must agree. *)
let test_topk_fusion_agrees () =
  let db = Tutil.random_db ~seed:21 ~rows:400 in
  let sql = "SELECT id, v FROM r ORDER BY v DESC, id LIMIT 9 OFFSET 2" in
  let with_topk = Tutil.table_rows (Quill.Db.query db sql) in
  Quill.Db.set_options db { Picker.default_options with Picker.enable_topk = false };
  let without = Tutil.table_rows (Quill.Db.query db sql) in
  Quill.Db.set_options db Picker.default_options;
  Alcotest.(check bool) "same" true (Tutil.same_rows_ordered with_topk without)

let test_parallel_fused_agg () =
  (* The domain-parallel fused scan->aggregate must agree with the
     sequential path: exactly for int aggregates, within float epsilon for
     SUM/AVG (addition order differs). *)
  let db = Quill.Db.create () in
  Quill_storage.Catalog.add (Quill.Db.catalog db)
    (Quill_workload.Micro.grouped_table ~rows:200_000 ~groups:1000 ~seed:4 ());
  let sql = "SELECT count(*), sum(g), min(v), max(v), avg(v) FROM grouped WHERE v > 100" in
  let seq = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Compiled sql) in
  Quill.Db.set_parallelism db 4;
  let par = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Compiled sql) in
  Quill.Db.set_parallelism db 1;
  Array.iteri
    (fun j a ->
      match (a, par.(0).(j)) with
      | Value.Float x, Value.Float y ->
          Alcotest.(check bool) "float close" true
            (Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x))
      | a, b -> Alcotest.check Tutil.value_testable "exact" a b)
    seq.(0)

(* Differential profile sweep: for every engine, serial and parallel, the
   root operator's profiled rows_out must equal the materialized result's
   row count on the TPC-H-analog workload. *)
let test_profile_root_rows () =
  let db = Quill.Db.create () in
  Quill_workload.Tpch.load (Quill.Db.catalog db) ~sf:0.002 ~seed:7;
  List.iter
    (fun par ->
      Quill.Db.set_parallelism db par;
      List.iter
        (fun (name, sql) ->
          let plan = Quill.Db.plan db sql in
          List.iter
            (fun engine ->
              let profile = Quill_exec.Profile.create plan in
              let ctx =
                Quill_exec.Exec_ctx.create ~profile (Quill.Db.catalog db)
              in
              let rows =
                match engine with
                | Quill.Db.Volcano -> Quill_exec.Volcano.run ctx plan
                | Quill.Db.Vectorized -> Quill_exec.Vector.run ctx plan
                | Quill.Db.Compiled ->
                    Quill_util.Vec.to_array (Quill_compile.Codegen.run ctx plan)
              in
              Alcotest.(check int)
                (Printf.sprintf "%s root rows_out (%s, par=%d)" name
                   (Quill.Db.engine_name engine) par)
                (Array.length rows)
                (Quill_exec.Profile.rows profile 0))
            engines)
        Quill_workload.Tpch.queries)
    [ 1; 4 ];
  Quill.Db.set_parallelism db 1

let test_tpch_engines_agree () =
  let db = Quill.Db.create () in
  Quill_workload.Tpch.load (Quill.Db.catalog db) ~sf:0.002 ~seed:7;
  List.iter
    (fun (name, sql) ->
      let reference = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
      Alcotest.(check bool) (name ^ " nonempty") true (Array.length reference > 0);
      List.iter
        (fun engine ->
          let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" name (Quill.Db.engine_name engine))
            true
            (if is_ordered sql then Tutil.same_rows_ordered reference got
             else Tutil.same_rows_unordered reference got))
        engines)
    Quill_workload.Tpch.queries

(* Float aggregates can differ in rounding across engines if summation
   order differs; verify Q1's aggregates match to a relative epsilon. *)
let test_tpch_q1_values_close () =
  let db = Quill.Db.create () in
  Quill_workload.Tpch.load (Quill.Db.catalog db) ~sf:0.002 ~seed:7;
  let a = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano Quill_workload.Tpch.q1) in
  let b = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Compiled Quill_workload.Tpch.q1) in
  Array.iteri
    (fun i ra ->
      Array.iteri
        (fun j va ->
          match (va, b.(i).(j)) with
          | Value.Float x, Value.Float y ->
              Alcotest.(check bool) "close" true
                (Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x))
          | va, vb -> Alcotest.check Tutil.value_testable "exact" va vb)
        ra)
    a

let prop_random_filters_agree =
  Tutil.qtest ~count:40 "random WHERE clauses agree across engines"
    QCheck2.Gen.(
      let* lo = int_range 0 15 in
      let* hi = int_range 0 15 in
      let* vthresh = int_range 0 100 in
      pure (lo, hi, vthresh))
    (fun (lo, hi, vthresh) ->
      let db = Tutil.random_db ~seed:13 ~rows:150 in
      let sql =
        Printf.sprintf
          "SELECT id FROM r WHERE (k >= %d AND k <= %d) OR v < %d.0" lo hi vthresh
      in
      let reference = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
      List.for_all
        (fun engine ->
          Tutil.same_rows_unordered reference
            (Tutil.table_rows (Quill.Db.query db ~engine sql)))
        engines)

let () =
  Alcotest.run "engines"
    [
      ( "agreement",
        [
          Alcotest.test_case "battery seed 11" `Quick test_battery;
          Alcotest.test_case "battery seed 77" `Quick test_battery_other_seed;
          Alcotest.test_case "empty tables" `Quick test_empty_tables;
          Alcotest.test_case "params" `Quick test_params_agree;
          prop_random_filters_agree;
        ] );
      ( "forced algorithms",
        [
          Alcotest.test_case "joins/aggs/layouts" `Quick test_forced_algorithms;
          Alcotest.test_case "topk fusion" `Quick test_topk_fusion_agrees;
        ] );
      ( "outer joins",
        [
          Alcotest.test_case "semantics" `Quick test_left_join_semantics;
          Alcotest.test_case "null keys padded" `Quick test_left_join_null_keys_padded;
          Alcotest.test_case "forced algorithms" `Quick test_left_join_forced_algos;
          Alcotest.test_case "where vs on" `Quick test_left_join_where_vs_on;
        ] );
      ( "parallel",
        [ Alcotest.test_case "fused agg domains" `Quick test_parallel_fused_agg ] );
      ( "tpch",
        [
          Alcotest.test_case "queries agree" `Slow test_tpch_engines_agree;
          Alcotest.test_case "profile root rows" `Quick test_profile_root_rows;
          Alcotest.test_case "q1 floats close" `Slow test_tpch_q1_values_close;
        ] );
    ]
