(* Tests for the runtime algorithm library: sorts, joins, aggregation,
   top-k. Each algorithm family is checked against a trivially-correct
   reference implementation, unit cases plus qcheck properties. *)

module Value = Quill_storage.Value
module Sort_algos = Quill_exec.Sort_algos
module Join_algos = Quill_exec.Join_algos
module Agg_algos = Quill_exec.Agg_algos
module Topk = Quill_exec.Topk
module Lplan = Quill_plan.Lplan
module Vec = Quill_util.Vec

(* --- Sorts -------------------------------------------------------------- *)

let int_list_gen = QCheck2.Gen.(list_size (int_range 0 300) (int_range (-1000) 1000))

let prop_quicksort =
  Tutil.qtest "quicksort = List.sort" int_list_gen (fun xs ->
      let a = Array.of_list xs in
      Sort_algos.quicksort compare a;
      Array.to_list a = List.sort compare xs)

let prop_mergesort =
  Tutil.qtest "mergesort = List.sort" int_list_gen (fun xs ->
      let a = Array.of_list xs in
      Sort_algos.mergesort compare a;
      Array.to_list a = List.sort compare xs)

let prop_radix =
  Tutil.qtest "radix = List.sort (with negatives)"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range (-1000000) 1000000))
    (fun xs ->
      let a = Array.of_list xs in
      Sort_algos.radix_sort_ints a;
      Array.to_list a = List.sort compare xs)

let test_radix_extremes () =
  let a = [| max_int; min_int; 0; -1; 1; min_int + 1; max_int - 1 |] in
  let expect = Array.copy a in
  Array.sort compare expect;
  Sort_algos.radix_sort_ints a;
  Alcotest.(check (array int)) "extremes" expect a

let prop_mergesort_stable =
  Tutil.qtest "mergesort is stable"
    QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 5) (int_range 0 1000)))
    (fun xs ->
      (* Sort pairs by the first component only; ties keep insertion order. *)
      let a = Array.of_list xs in
      Sort_algos.mergesort (fun (k1, _) (k2, _) -> compare k1 k2) a;
      let expected = List.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) xs in
      Array.to_list a = expected)

let row i v = [| Value.Int i; Value.Str (string_of_int v) |]

let test_sort_rows_dirs () =
  let rows = [| row 3 0; row 1 1; row 2 2 |] in
  Sort_algos.sort_rows [ (0, Lplan.Desc) ] rows;
  Alcotest.(check bool) "desc" true
    (rows.(0).(0) = Value.Int 3 && rows.(2).(0) = Value.Int 1)

let test_sort_rows_nulls_first () =
  let rows = [| row 3 0; [| Value.Null; Value.Str "n" |]; row 1 1 |] in
  Sort_algos.sort_rows [ (0, Lplan.Asc) ] rows;
  Alcotest.(check bool) "null first on asc" true (Value.is_null rows.(0).(0))

let prop_sort_rows_radix_path =
  (* Large single-int-key ASC sorts take the packed-radix path; verify it
     agrees with the comparator path and stays stable. *)
  Tutil.qtest ~count:10 "row sort radix path = mergesort path"
    QCheck2.Gen.(int_range 0 3)
    (fun seed ->
      let rng = Quill_util.Rng.create (7 * (seed + 1)) in
      let n = (1 lsl 14) + 17 in
      let rows =
        Array.init n (fun i ->
            [| Value.Int (Quill_util.Rng.int rng 100); Value.Int i |])
      in
      let a = Array.copy rows and b = Array.copy rows in
      Sort_algos.sort_rows [ (0, Lplan.Asc) ] a;
      Sort_algos.mergesort (Sort_algos.row_compare [ (0, Lplan.Asc) ]) b;
      Tutil.same_rows_ordered a b)

let test_sort_pick () =
  Alcotest.(check bool) "radix for big ints" true
    (Sort_algos.pick ~n:100000 ~int_keys:true ~need_stable:false = Sort_algos.Radix);
  Alcotest.(check bool) "merge when stable" true
    (Sort_algos.pick ~n:100000 ~int_keys:false ~need_stable:true = Sort_algos.Merge);
  Alcotest.(check bool) "quick otherwise" true
    (Sort_algos.pick ~n:100 ~int_keys:false ~need_stable:false = Sort_algos.Quick)

(* --- Joins -------------------------------------------------------------- *)

(* Reference: naive nested loop with the same semantics. *)
let ref_join ~keys left right =
  let out = ref [] in
  Array.iter
    (fun l ->
      Array.iter
        (fun r ->
          let ok =
            List.for_all
              (fun (lc, rc) ->
                (not (Value.is_null l.(lc)))
                && (not (Value.is_null r.(rc)))
                && Value.equal l.(lc) r.(rc))
              keys
          in
          if ok then out := Array.append l r :: !out)
        right)
    left;
  Array.of_list (List.rev !out)

let join_input_gen =
  QCheck2.Gen.(
    let row_g =
      let* k = frequency [ (8, map (fun i -> Value.Int i) (int_range 0 8)); (2, pure Value.Null) ] in
      let* v = int_range 0 100 in
      pure [| k; Value.Int v |]
    in
    pair (array_size (int_range 0 40) row_g) (array_size (int_range 0 40) row_g))

let check_join name impl =
  Tutil.qtest ~count:150 name join_input_gen (fun (l, r) ->
      let expect = ref_join ~keys:[ (0, 0) ] l r in
      let got = Vec.to_array (impl l r) in
      Tutil.same_rows_unordered expect got)

let prop_hash_join_left =
  check_join "hash join (build left) = reference" (fun l r ->
      Join_algos.hash_join ~keys:[ (0, 0) ] ~residual:None ~build_left:true l r)

let prop_hash_join_right =
  check_join "hash join (build right) = reference" (fun l r ->
      Join_algos.hash_join ~keys:[ (0, 0) ] ~residual:None ~build_left:false l r)

let prop_merge_join =
  check_join "merge join = reference" (fun l r ->
      Join_algos.merge_join ~keys:[ (0, 0) ] ~residual:None l r)

let prop_block_nl_equi =
  check_join "block NL with equi pred = reference" (fun l r ->
      let pred row =
        (not (Value.is_null row.(0)))
        && (not (Value.is_null row.(2)))
        && Value.equal row.(0) row.(2)
      in
      Join_algos.block_nl_join ~pred:(Some pred) l r)

let test_join_residual () =
  let l = [| [| Value.Int 1; Value.Int 10 |]; [| Value.Int 1; Value.Int 20 |] |] in
  let r = [| [| Value.Int 1; Value.Int 15 |] |] in
  let residual row = Value.compare row.(1) row.(3) > 0 in
  let got =
    Join_algos.hash_join ~keys:[ (0, 0) ] ~residual:(Some residual) ~build_left:true l r
  in
  Alcotest.(check int) "residual filters" 1 (Vec.length got);
  Alcotest.(check bool) "right one" true (Value.equal (Vec.get got 0).(1) (Value.Int 20))

let test_cross_join () =
  let l = [| [| Value.Int 1 |]; [| Value.Int 2 |] |] in
  let r = [| [| Value.Str "a" |]; [| Value.Str "b" |]; [| Value.Str "c" |] |] in
  let got = Join_algos.block_nl_join ~pred:None l r in
  Alcotest.(check int) "cross size" 6 (Vec.length got)

let prop_multi_key_join =
  Tutil.qtest ~count:100 "two-key joins agree across algorithms"
    QCheck2.Gen.(
      let row_g =
        let* a = int_range 0 3 in
        let* b = int_range 0 3 in
        pure [| Value.Int a; Value.Int b; Value.Int (a + b) |]
      in
      pair (array_size (int_range 0 25) row_g) (array_size (int_range 0 25) row_g))
    (fun (l, r) ->
      let keys = [ (0, 1); (1, 0) ] in
      let expect = ref_join ~keys l r in
      let h = Vec.to_array (Join_algos.hash_join ~keys ~residual:None ~build_left:true l r) in
      let m = Vec.to_array (Join_algos.merge_join ~keys ~residual:None l r) in
      Tutil.same_rows_unordered expect h && Tutil.same_rows_unordered expect m)

(* --- Aggregation --------------------------------------------------------- *)

let specs_all =
  [
    { Agg_algos.kind = Lplan.Count; arg = None; distinct = false; out_dtype = Value.Int_t };
    { Agg_algos.kind = Lplan.Count; arg = Some (fun r -> r.(1)); distinct = false;
      out_dtype = Value.Int_t };
    { Agg_algos.kind = Lplan.Sum; arg = Some (fun r -> r.(1)); distinct = false;
      out_dtype = Value.Int_t };
    { Agg_algos.kind = Lplan.Avg; arg = Some (fun r -> r.(1)); distinct = false;
      out_dtype = Value.Float_t };
    { Agg_algos.kind = Lplan.Min; arg = Some (fun r -> r.(1)); distinct = false;
      out_dtype = Value.Int_t };
    { Agg_algos.kind = Lplan.Max; arg = Some (fun r -> r.(1)); distinct = false;
      out_dtype = Value.Int_t };
  ]

let agg_rows_gen =
  QCheck2.Gen.(
    array_size (int_range 0 80)
      (let* g = int_range 0 5 in
       let* v = frequency [ (8, map (fun v -> Value.Int v) (int_range (-50) 50)); (2, pure Value.Null) ] in
       pure [| Value.Int g; v |]))

let prop_hash_vs_sort_agg =
  Tutil.qtest ~count:200 "hash agg = sort agg" agg_rows_gen (fun rows ->
      let keys = [ (fun (r : Value.t array) -> r.(0)) ] in
      let h = Vec.to_array (Agg_algos.hash_agg ~keys ~specs:specs_all rows) in
      let s = Vec.to_array (Agg_algos.sort_agg ~keys ~specs:specs_all rows) in
      Tutil.same_rows_unordered h s)

let test_agg_semantics () =
  let rows =
    [| [| Value.Int 1; Value.Int 10 |];
       [| Value.Int 1; Value.Null |];
       [| Value.Int 2; Value.Int 5 |] |]
  in
  let keys = [ (fun (r : Value.t array) -> r.(0)) ] in
  let out = Vec.to_array (Agg_algos.hash_agg ~keys ~specs:specs_all rows) in
  Alcotest.(check int) "two groups" 2 (Array.length out);
  let g1 = Array.to_list out |> List.find (fun r -> Value.equal r.(0) (Value.Int 1)) in
  (* count-star=2, count(v)=1, sum=10, avg=10.0, min=10, max=10 *)
  Alcotest.check Tutil.value_testable "count*" (Value.Int 2) g1.(1);
  Alcotest.check Tutil.value_testable "count v" (Value.Int 1) g1.(2);
  Alcotest.check Tutil.value_testable "sum" (Value.Int 10) g1.(3);
  Alcotest.check Tutil.value_testable "avg" (Value.Float 10.0) g1.(4)

let test_agg_all_null_group () =
  let rows = [| [| Value.Int 1; Value.Null |] |] in
  let keys = [ (fun (r : Value.t array) -> r.(0)) ] in
  let out = Vec.to_array (Agg_algos.hash_agg ~keys ~specs:specs_all rows) in
  let r = out.(0) in
  Alcotest.check Tutil.value_testable "sum null" Value.Null r.(3);
  Alcotest.check Tutil.value_testable "avg null" Value.Null r.(4);
  Alcotest.check Tutil.value_testable "min null" Value.Null r.(5)

let test_global_agg_empty_input () =
  let out = Vec.to_array (Agg_algos.hash_agg ~keys:[] ~specs:specs_all [||]) in
  Alcotest.(check int) "one row" 1 (Array.length out);
  Alcotest.check Tutil.value_testable "count 0" (Value.Int 0) out.(0).(0);
  Alcotest.check Tutil.value_testable "sum null" Value.Null out.(0).(3)

let test_keyed_agg_empty_input () =
  let keys = [ (fun (r : Value.t array) -> r.(0)) ] in
  let out = Vec.to_array (Agg_algos.hash_agg ~keys ~specs:specs_all [||]) in
  Alcotest.(check int) "zero rows" 0 (Array.length out)

let test_count_distinct () =
  let spec =
    [ { Agg_algos.kind = Lplan.Count; arg = Some (fun (r : Value.t array) -> r.(1));
        distinct = true; out_dtype = Value.Int_t };
      { Agg_algos.kind = Lplan.Sum; arg = Some (fun (r : Value.t array) -> r.(1));
        distinct = true; out_dtype = Value.Int_t } ]
  in
  let rows =
    [| [| Value.Int 1; Value.Int 5 |]; [| Value.Int 1; Value.Int 5 |];
       [| Value.Int 1; Value.Int 7 |]; [| Value.Int 1; Value.Null |] |]
  in
  let keys = [ (fun (r : Value.t array) -> r.(0)) ] in
  let out = Vec.to_array (Agg_algos.hash_agg ~keys ~specs:spec rows) in
  Alcotest.check Tutil.value_testable "count distinct" (Value.Int 2) out.(0).(1);
  Alcotest.check Tutil.value_testable "sum distinct" (Value.Int 12) out.(0).(2)

let test_distinct_rows () =
  let rows =
    [| [| Value.Int 1; Value.Null |]; [| Value.Int 1; Value.Null |];
       [| Value.Int 2; Value.Null |] |]
  in
  let out = Vec.to_array (Agg_algos.distinct rows) in
  Alcotest.(check int) "nulls dedup together" 2 (Array.length out)

(* --- Top-k --------------------------------------------------------------- *)

let prop_topk =
  Tutil.qtest "topk = sort-then-take"
    QCheck2.Gen.(pair (int_range 1 20) int_list_gen)
    (fun (k, xs) ->
      let heap = Topk.create ~cmp:compare ~k ~dummy:[||] () in
      List.iter (fun x -> Topk.offer heap [| Value.Int x |]) xs;
      let got =
        Array.to_list (Array.map (fun r -> r.(0)) (Topk.finish heap))
      in
      let expect =
        List.filteri
          (fun i _ -> i < k)
          (List.sort compare (List.map (fun x -> Value.Int x) xs))
      in
      got = expect)

let () =
  Alcotest.run "exec_algos"
    [
      ( "sorts",
        [
          prop_quicksort; prop_mergesort; prop_radix;
          Alcotest.test_case "radix extremes" `Quick test_radix_extremes;
          prop_mergesort_stable;
          Alcotest.test_case "row dirs" `Quick test_sort_rows_dirs;
          Alcotest.test_case "nulls first" `Quick test_sort_rows_nulls_first;
          prop_sort_rows_radix_path;
          Alcotest.test_case "pick" `Quick test_sort_pick;
        ] );
      ( "joins",
        [
          prop_hash_join_left; prop_hash_join_right; prop_merge_join; prop_block_nl_equi;
          Alcotest.test_case "residual" `Quick test_join_residual;
          Alcotest.test_case "cross" `Quick test_cross_join;
          prop_multi_key_join;
        ] );
      ( "aggregation",
        [
          prop_hash_vs_sort_agg;
          Alcotest.test_case "semantics" `Quick test_agg_semantics;
          Alcotest.test_case "all-null group" `Quick test_agg_all_null_group;
          Alcotest.test_case "global over empty" `Quick test_global_agg_empty_input;
          Alcotest.test_case "keyed over empty" `Quick test_keyed_agg_empty_input;
          Alcotest.test_case "count distinct" `Quick test_count_distinct;
          Alcotest.test_case "distinct rows" `Quick test_distinct_rows;
        ] );
      ("topk", [ prop_topk ]);
    ]
