(* Grammar-directed SQL fuzzing: generate random (valid) SELECTs over the
   shared random database and check that all three engines agree with the
   Volcano reference, with and without optimizations.

   This is the broadest correctness net in the suite: it routinely
   exercises combinations (e.g. LEFT JOIN + GROUP BY + HAVING + hidden
   ORDER BY keys + LIMIT) that no hand-written case covers. *)

module Value = Quill_storage.Value
module Picker = Quill_optimizer.Picker

open QCheck2.Gen

(* --- Expression generators over the r(id,k,v,tag,dt) / s(id,k,w)
   schemas of Tutil.random_db ------------------------------------------- *)

let int_col_r = oneofl [ "r.id"; "r.k" ]
let any_col pair = if pair then oneofl [ "r.id"; "r.k"; "s.id"; "s.k"; "s.w" ] else int_col_r

(* A numeric scalar expression over int columns. *)
let rec num_expr ~pair depth =
  if depth = 0 then
    oneof [ map (fun c -> c) (any_col pair); map string_of_int (int_range 0 20) ]
  else
    oneof
      [ num_expr ~pair 0;
        (let* a = num_expr ~pair (depth - 1) in
         let* b = num_expr ~pair (depth - 1) in
         let* op = oneofl [ "+"; "-"; "*" ] in
         pure (Printf.sprintf "(%s %s %s)" a op b)) ]

let pred ~pair depth =
  let cmp =
    let* a = num_expr ~pair (min 1 depth) in
    let* op = oneofl [ "="; "<>"; "<"; "<="; ">"; ">=" ] in
    let* b = num_expr ~pair (min 1 depth) in
    pure (Printf.sprintf "%s %s %s" a op b)
  in
  let tag_pred =
    oneofl
      [ "r.tag = 'alpha'"; "r.tag LIKE 'a%'"; "r.tag IN ('beta', 'gamma')";
        "r.tag <> 'delta'"; "length(r.tag) > 4" ]
  in
  let null_pred =
    let* c = any_col pair in
    let* neg = bool in
    pure (Printf.sprintf "%s IS %sNULL" c (if neg then "NOT " else ""))
  in
  let date_pred = pure "r.dt >= DATE '1994-08-01'" in
  let rec go depth =
    if depth = 0 then oneof [ cmp; tag_pred; null_pred; date_pred ]
    else
      oneof
        [ go 0;
          (let* a = go (depth - 1) in
           let* b = go (depth - 1) in
           let* c = oneofl [ "AND"; "OR" ] in
           pure (Printf.sprintf "(%s %s %s)" a c b));
          map (Printf.sprintf "NOT (%s)") (go (depth - 1)) ]
  in
  go depth

(* --- Query generator ---------------------------------------------------- *)

type shape = {
  sql : string;
  ordered : bool;  (** compare respecting order *)
}

let query_gen =
  let* pair = bool in
  let from_clause =
    if pair then
      oneofl
        [ "r, s WHERE r.id = s.id"; "r JOIN s ON r.k = s.k";
          "r LEFT JOIN s ON r.id = s.id" ]
    else pure "r"
  in
  let* from = from_clause in
  let has_where = not (String.length from > 1 && String.contains from 'W') in
  let* where =
    if has_where then
      oneof [ pure ""; map (Printf.sprintf " WHERE %s") (pred ~pair 2) ]
    else
      (* FROM already has a WHERE: extend it. *)
      oneof [ pure ""; map (Printf.sprintf " AND %s") (pred ~pair 1) ]
  in
  let* grouped = bool in
  if grouped then begin
    (* Aggregate query over r.k (and possibly join). *)
    let* having = oneof [ pure ""; pure " HAVING count(*) > 2" ] in
    let* order = oneofl [ ""; " ORDER BY 1"; " ORDER BY n DESC, 1" ] in
    let* limit = oneof [ pure ""; map (Printf.sprintf " LIMIT %d") (int_range 1 10) ] in
    let agg_exprs =
      "r.k, count(*) AS n, sum(r.id) AS s1, min(r.v) AS mn, max(r.dt) AS mx"
    in
    pure
      {
        sql =
          Printf.sprintf "SELECT %s FROM %s%s GROUP BY r.k%s%s%s" agg_exprs from where
            having order limit;
        ordered = order <> "" && limit = "";
      }
  end
  else begin
    let* items =
      oneofl
        [ "r.id, r.k"; "r.id, r.v * 2 AS vv"; "r.id, upper(r.tag) AS t";
          "r.id, CASE WHEN r.k > 10 THEN 'hi' ELSE 'lo' END AS b";
          "r.id, coalesce(r.k, -1) AS k2" ]
    in
    let* distinct = oneofl [ ""; "DISTINCT " ] in
    let* order = oneofl [ ""; " ORDER BY r.id"; " ORDER BY 1 DESC" ] in
    (* DISTINCT + ORDER BY expression outside the list is rejected; the
       choices above always order by output columns. *)
    let* limit = oneof [ pure ""; map (Printf.sprintf " LIMIT %d") (int_range 1 20) ] in
    let order = if distinct <> "" && order = " ORDER BY r.id" then " ORDER BY 1" else order in
    pure
      {
        sql = Printf.sprintf "SELECT %s%s FROM %s%s%s%s" distinct items from where order limit;
        ordered = order <> "" && limit = "";
      }
  end

(* One shared database: rebuilding per case would dominate runtime. *)
let db = lazy (Tutil.random_db ~seed:20260705 ~rows:180)

let engines = [ Quill.Db.Vectorized; Quill.Db.Compiled ]

let check_shape ?(options = Picker.default_options) shape =
  let db = Lazy.force db in
  Quill.Db.set_options db options;
  let result =
    try
      let reference =
        Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano shape.sql)
      in
      List.for_all
        (fun engine ->
          let got = Tutil.table_rows (Quill.Db.query db ~engine shape.sql) in
          let ok =
            if shape.ordered then Tutil.same_rows_ordered reference got
            else Tutil.same_rows_unordered reference got
          in
          if not ok then
            QCheck2.Test.fail_reportf "engines disagree on %s (%s)" shape.sql
              (Quill.Db.engine_name engine)
          else true)
        engines
    with Quill.Db.Error m ->
      QCheck2.Test.fail_reportf "generated query failed to run: %s\n%s" m shape.sql
  in
  Quill.Db.set_options db Picker.default_options;
  result

let prop_engines_agree =
  Tutil.qtest ~count:300 "fuzz: engines agree on random queries" query_gen check_shape

let prop_optimizer_preserves =
  (* The same random queries with the whole optimizer neutered (no
     reordering, no index, no topk, forced volcano-friendly choices) must
     return the same rows. *)
  Tutil.qtest ~count:150 "fuzz: optimizations preserve results" query_gen
    (fun shape ->
      let db = Lazy.force db in
      let plain =
        { Picker.default_options with
          Picker.enable_reorder = false;
          enable_topk = false;
          enable_index = false }
      in
      Quill.Db.set_options db plain;
      let a = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano shape.sql) in
      Quill.Db.set_options db Picker.default_options;
      let b = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Compiled shape.sql) in
      if shape.ordered then Tutil.same_rows_ordered a b
      else Tutil.same_rows_unordered a b)

let prop_forced_joins_agree =
  Tutil.qtest ~count:100 "fuzz: forced join algorithms agree" query_gen
    (fun shape ->
      List.for_all
        (fun algo ->
          check_shape
            ~options:
              { Picker.default_options with
                Picker.force_join = Some algo }
            shape)
        [ Quill_optimizer.Physical.Hash_join; Quill_optimizer.Physical.Merge_join ])

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let prop_parallel_agrees =
  (* The same random queries run morsel-parallel must match the serial
     Volcano reference.  Morsel size 16 splits even the 180-row fuzz
     tables into many morsels so the parallel paths really engage.  One
     corner is legitimately nondeterministic and skipped: a grouped query
     with LIMIT but no ORDER BY keeps whichever groups the
     scheduling-dependent emission order put first. *)
  Tutil.qtest ~count:150 "fuzz: parallel execution agrees" query_gen
    (fun shape ->
      let nondet =
        contains_sub shape.sql "GROUP BY"
        && contains_sub shape.sql " LIMIT "
        && not (contains_sub shape.sql " ORDER BY ")
      in
      nondet
      ||
      let db = Lazy.force db in
      Fun.protect
        ~finally:(fun () -> Quill.Db.set_parallelism db 1)
        (fun () ->
          Quill_parallel.Morsel.with_size 16 (fun () ->
              List.for_all
                (fun w ->
                  Quill.Db.set_parallelism db w;
                  check_shape shape)
                [ 2; 3 ])))

let row_dump rows =
  (* A byte-exact serialization: observability must not change a single
     value, not just multiset equality. *)
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat "|"
              (Array.to_list (Array.map Quill_storage.Value.to_string row)))
          rows))

let prop_observability_is_transparent =
  (* Running the same query with tracing on AND an instrumented EXPLAIN
     ANALYZE in between must return byte-identical rows to the
     uninstrumented run: profiling sinks and spans cannot perturb
     results. *)
  Tutil.qtest ~count:100 "fuzz: tracing + EXPLAIN ANALYZE is transparent"
    query_gen
    (fun shape ->
      let db = Lazy.force db in
      let sort rows =
        if shape.ordered then rows
        else begin
          let l = Array.copy rows in
          Array.sort compare l;
          l
        end
      in
      let plain =
        row_dump (sort (Tutil.table_rows (Quill.Db.query db shape.sql)))
      in
      Fun.protect
        ~finally:(fun () -> Quill.Db.set_tracing false)
        (fun () ->
          Quill.Db.set_tracing true;
          ignore (Quill.Db.explain db ~analyze:true shape.sql);
          let traced =
            row_dump (sort (Tutil.table_rows (Quill.Db.query db shape.sql)))
          in
          if plain <> traced then
            QCheck2.Test.fail_reportf
              "instrumented run differs on %s\nplain:\n%s\ntraced:\n%s"
              shape.sql plain traced
          else true))

let prop_governor_is_transparent =
  (* A governor with a generous deadline and budget must never change
     results: the polling, charging and budget-aware plan penalties are
     pure overhead unless a limit is actually hit. *)
  Tutil.qtest ~count:100 "fuzz: generous governor is transparent" query_gen
    (fun shape ->
      let db = Lazy.force db in
      let plain =
        Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano shape.sql)
      in
      List.for_all
        (fun engine ->
          let governed =
            Tutil.table_rows
              (Quill.Db.query db ~engine ~timeout_ms:600_000
                 ~budget_bytes:(1 lsl 30) shape.sql)
          in
          let ok =
            if shape.ordered then Tutil.same_rows_ordered plain governed
            else Tutil.same_rows_unordered plain governed
          in
          if not ok then
            QCheck2.Test.fail_reportf "governed run differs on %s (%s)" shape.sql
              (Quill.Db.engine_name engine)
          else true)
        (Quill.Db.Volcano :: engines))

let prop_spill_is_transparent =
  (* Budgets far under the working set force real spilling (16 KiB
     partitions once; 4 KiB recurses) — and an out-of-core run must be
     indistinguishable from the unbudgeted one: same rows, every engine,
     serial and morsel-parallel.  The only acceptable non-answer is a
     clean Resource_exhausted from a shape whose state is documented
     unspillable (DISTINCT); wrong rows are never acceptable. *)
  Tutil.qtest ~count:60 "fuzz: spilling is transparent" query_gen
    (fun shape ->
      let db = Lazy.force db in
      let has_distinct = contains_sub shape.sql "DISTINCT" in
      (* Any LIMIT keeps whichever qualifying rows arrive first (ORDER BY
         ties included) — and spilling reorders arrival (partition order,
         key-sorted run merges), so the surviving subset is legitimately
         different.  Only fully-determined shapes are comparable. *)
      let nondet = contains_sub shape.sql " LIMIT " in
      nondet
      ||
      let plain =
        Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano shape.sql)
      in
      let check_one engine par budget ~may_refuse =
        Quill.Db.set_parallelism db par;
        match
          Quill.Db.query db ~engine ~budget_bytes:budget shape.sql
        with
        | spilled ->
            let got = Tutil.table_rows spilled in
            let ok =
              if shape.ordered then Tutil.same_rows_ordered plain got
              else Tutil.same_rows_unordered plain got
            in
            if not ok then
              QCheck2.Test.fail_reportf
                "spilled run differs on %s (%s, par %d, budget %d)" shape.sql
                (Quill.Db.engine_name engine) par budget
            else true
        | exception Quill.Db.Aborted Quill.Db.Resource_exhausted
          when may_refuse || has_distinct ->
            (* Unspillable state (DISTINCT dedup tables, a few bytes of
               operator residue at the starvation tier) may be refused
               cleanly; wrong rows are never acceptable. *)
            true
      in
      Fun.protect
        ~finally:(fun () -> Quill.Db.set_parallelism db 1)
        (fun () ->
          List.for_all
            (fun (budget, may_refuse) ->
              List.for_all
                (fun engine ->
                  List.for_all
                    (fun par -> check_one engine par budget ~may_refuse)
                    [ 1; 3 ])
                (Quill.Db.Volcano :: engines))
            (* 16 KiB forces one partitioning pass and must still answer;
               4 KiB forces recursion and may cleanly refuse. *)
            [ (16 * 1024, false); (4 * 1024, true) ]))

let () =
  Alcotest.run "fuzz"
    [ ( "random queries",
        [ prop_engines_agree; prop_optimizer_preserves; prop_forced_joins_agree;
          prop_parallel_agrees; prop_observability_is_transparent;
          prop_governor_is_transparent; prop_spill_is_transparent ] ) ]
