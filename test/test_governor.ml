(* Tests for the per-query resource governor: deadlines fire in every
   engine (serial and morsel-parallel), cancellation reaches a running
   query from another domain, memory budgets kill allocating operators,
   the picker sees the budget, every abort is observable, and the session
   stays fully usable afterwards. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Governor = Quill_exec.Governor
module Metrics = Quill_obs.Metrics
module Picker = Quill_optimizer.Picker
module Physical = Quill_optimizer.Physical

let m_timeouts = Metrics.counter "quill.governor.timeouts"
let m_cancels = Metrics.counter "quill.governor.cancels"
let m_budget_kills = Metrics.counter "quill.governor.budget_kills"

let engines = [ Quill.Db.Volcano; Quill.Db.Vectorized; Quill.Db.Compiled ]

(* Two single-column tables whose cross product is far too large to ever
   finish: abort tests rely on the deadline/flag firing, not on luck. *)
let cross_db rows =
  let db = Quill.Db.create () in
  let mk name col =
    let t =
      Table.create ~name (Schema.create [ Schema.col ~nullable:false col Value.Int_t ])
    in
    for i = 0 to rows - 1 do
      Table.insert t [| Value.Int i |]
    done;
    Catalog.add (Quill.Db.catalog db) t
  in
  mk "a" "x";
  mk "b" "y";
  db

(* t(k, v) with one group per row: a hash aggregation over it allocates
   [rows] group states, which any small budget must catch. *)
let grouped_db rows =
  let db = Quill.Db.create () in
  let t =
    Table.create ~name:"g"
      (Schema.create
         [ Schema.col ~nullable:false "k" Value.Int_t;
           Schema.col ~nullable:false "v" Value.Int_t ])
  in
  for i = 0 to rows - 1 do
    Table.insert t [| Value.Int i; Value.Int (i mod 7) |]
  done;
  Catalog.add (Quill.Db.catalog db) t;
  db

let expect_abort reason thunk =
  match thunk () with
  | _ -> Error "query finished instead of aborting"
  | exception Quill.Db.Aborted r ->
      if r = reason then Ok ()
      else Error (Printf.sprintf "aborted with %s" (Quill.Db.abort_reason_name r))

(* The acceptance bar: a 100k x 100k cross join under a 50ms deadline must
   abort well under a second in every engine, serial and parallel, and the
   session (and the shared domain pool) must answer the next query. *)
let test_timeout_all_engines () =
  let db = cross_db 100_000 in
  let sql = "SELECT count(*) FROM a, b" in
  Fun.protect
    ~finally:(fun () -> Quill.Db.set_parallelism db 1)
    (fun () ->
      List.iter
        (fun par ->
          Quill.Db.set_parallelism db par;
          List.iter
            (fun engine ->
              let label =
                Printf.sprintf "%s/parallelism %d" (Quill.Db.engine_name engine) par
              in
              let before = Metrics.value m_timeouts in
              let t0 = Quill_util.Timer.now () in
              (match
                 expect_abort Quill.Db.Timeout (fun () ->
                     Quill.Db.query db ~engine ~timeout_ms:50 sql)
               with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "%s: %s" label msg);
              let elapsed = Quill_util.Timer.now () -. t0 in
              if elapsed > 1.0 then
                Alcotest.failf "%s: abort took %.2fs (bound: 1s)" label elapsed;
              Alcotest.(check bool)
                (label ^ ": timeout counted") true
                (Metrics.value m_timeouts > before);
              (* The session stays usable on the same engine. *)
              let r = Quill.Db.query db ~engine "SELECT count(*) FROM a WHERE x < 10" in
              Alcotest.check Tutil.value_testable
                (label ^ ": usable after abort")
                (Value.Int 10) (Table.get r 0 0))
            engines)
        [ 1; 4 ])

(* Session default deadline via set_timeout, cleared again afterwards. *)
let test_session_timeout_default () =
  let db = cross_db 60_000 in
  Quill.Db.set_timeout db (Some 40);
  Alcotest.(check (option int)) "default stored" (Some 40) (Quill.Db.timeout_ms db);
  (match
     expect_abort Quill.Db.Timeout (fun () ->
         Quill.Db.query db "SELECT count(*) FROM a, b")
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "session default: %s" msg);
  (* A per-call override beats the session default. *)
  Quill.Db.set_timeout db (Some 3_600_000);
  (match
     expect_abort Quill.Db.Timeout (fun () ->
         Quill.Db.query db ~timeout_ms:40 "SELECT count(*) FROM a, b")
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "per-call override: %s" msg);
  Quill.Db.set_timeout db None;
  let r = Quill.Db.query db "SELECT count(*) FROM a" in
  Alcotest.check Tutil.value_testable "cleared" (Value.Int 60_000) (Table.get r 0 0)

let test_cancel_from_other_domain () =
  let db = cross_db 60_000 in
  let before = Metrics.value m_cancels in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Quill.Db.cancel db)
  in
  let outcome =
    expect_abort Quill.Db.Cancelled (fun () ->
        Quill.Db.query db ~engine:Quill.Db.Vectorized "SELECT count(*) FROM a, b")
  in
  Domain.join canceller;
  (match outcome with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "cancel: %s" msg);
  Alcotest.(check bool) "cancel counted" true (Metrics.value m_cancels > before);
  let r = Quill.Db.query db "SELECT count(*) FROM a" in
  Alcotest.check Tutil.value_testable "usable after cancel" (Value.Int 60_000)
    (Table.get r 0 0)

(* query_adaptive is governed too, on both the cold (plan + run) and the
   warm (cached plan) paths. *)
let test_adaptive_path_governed () =
  let db = cross_db 60_000 in
  let sql = "SELECT count(*) FROM a, b" in
  for round = 1 to 2 do
    match
      expect_abort Quill.Db.Timeout (fun () ->
          Quill.Db.query_adaptive db ~timeout_ms:40 sql)
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "adaptive round %d: %s" round msg
  done

(* With spilling disabled ([Db.set_spill]), budget behavior is the
   pre-spill hard kill, byte-for-byte; with it on (the default), the same
   over-budget aggregation completes by spilling and matches the
   ungoverned result. *)
let test_budget_aborts_hash_agg () =
  let db = grouped_db 100_000 in
  Quill.Db.set_spill db false;
  let before = Metrics.value m_budget_kills in
  (match
     expect_abort Quill.Db.Resource_exhausted (fun () ->
         Quill.Db.query db ~budget_bytes:(1024 * 1024)
           "SELECT k, count(*) FROM g GROUP BY k")
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "hash agg: %s" msg);
  Alcotest.(check bool) "budget kill counted" true
    (Metrics.value m_budget_kills > before);
  (* Ungoverned, the same aggregation completes. *)
  let r = Quill.Db.query db "SELECT k, count(*) FROM g GROUP BY k" in
  Alcotest.(check int) "ungoverned completes" 100_000 (Table.row_count r);
  (* Spilling (the default) turns the kill into graceful degradation. *)
  Quill.Db.set_spill db true;
  let r =
    Quill.Db.query db ~budget_bytes:(1024 * 1024)
      "SELECT k, count(*) FROM g GROUP BY k"
  in
  Alcotest.(check int) "spilling completes" 100_000 (Table.row_count r)

let test_budget_aborts_hash_join_build () =
  let db = grouped_db 100_000 in
  Quill.Db.set_spill db false;
  (* The budget-aware picker would sidestep the hash join, so force it:
     the build side's charge must trip the budget. *)
  Quill.Db.set_options db
    { Picker.default_options with Picker.force_join = Some Physical.Hash_join };
  let outcome =
    expect_abort Quill.Db.Resource_exhausted (fun () ->
        Quill.Db.query db ~budget_bytes:(1024 * 1024)
          "SELECT count(*) FROM g g1, g g2 WHERE g1.k = g2.k")
  in
  (* Same forced plan, spilling on: the build Grace-partitions to disk
     and the join completes with the exact ungoverned answer. *)
  Quill.Db.set_spill db true;
  let unbudgeted =
    Quill.Db.query db "SELECT count(*) FROM g g1, g g2 WHERE g1.k = g2.k"
  in
  let spilled =
    Quill.Db.query db ~budget_bytes:(1024 * 1024)
      "SELECT count(*) FROM g g1, g g2 WHERE g1.k = g2.k"
  in
  Quill.Db.set_options db Picker.default_options;
  Alcotest.check Tutil.value_testable "spilling join matches"
    (Table.get unbudgeted 0 0) (Table.get spilled 0 0);
  match outcome with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "hash join build: %s" msg

(* The budget is visible to the picker.  With spilling off, a tight
   session budget flips the plan from hash join / hash aggregation to
   merge join / sort aggregation, whose working sets it does not
   penalize (the pre-spill steering).  With spilling on, the hash
   algorithms pay an honest spill-I/O term instead of the kill penalty —
   and the unspillable merge join's materialized inputs now price as the
   kill they are — so the hash plans survive a tight budget. *)
let test_budget_aware_planning () =
  let db = grouped_db 20_000 in
  Quill.Db.analyze db "g";
  let rec find_join = function
    | Physical.Join { algo; _ } -> Some algo
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _)
      ->
        find_join i
    | Physical.Aggregate { input; _ }
    | Physical.Window { input; _ }
    | Physical.Sort { input; _ }
    | Physical.Top_k { input; _ }
    | Physical.Limit { input; _ } ->
        find_join input
    | _ -> None
  in
  let rec find_agg = function
    | Physical.Aggregate { algo; _ } -> Some algo
    | Physical.Project (_, i, _) | Physical.Filter (_, i, _) | Physical.Distinct (i, _)
      ->
        find_agg i
    | Physical.Window { input; _ }
    | Physical.Sort { input; _ }
    | Physical.Top_k { input; _ }
    | Physical.Limit { input; _ } ->
        find_agg input
    | _ -> None
  in
  let join_sql = "SELECT count(*) FROM g g1, g g2 WHERE g1.k = g2.k" in
  let agg_sql = "SELECT k, count(*) FROM g GROUP BY k" in
  Alcotest.(check bool) "roomy: hash join" true
    (find_join (Quill.Db.plan db join_sql) = Some Physical.Hash_join);
  Alcotest.(check bool) "roomy: hash agg" true
    (find_agg (Quill.Db.plan db agg_sql) = Some Physical.Hash_agg);
  Quill.Db.set_budget db (Some 65_536);
  Alcotest.(check (option int)) "budget stored" (Some 65_536) (Quill.Db.budget_bytes db);
  Quill.Db.set_spill db false;
  Alcotest.(check bool) "tight, no spill: merge join" true
    (find_join (Quill.Db.plan db join_sql) = Some Physical.Merge_join);
  Alcotest.(check bool) "tight, no spill: sort agg" true
    (find_agg (Quill.Db.plan db agg_sql) = Some Physical.Sort_agg);
  Quill.Db.set_spill db true;
  Alcotest.(check bool) "tight, spill: hash join survives" true
    (find_join (Quill.Db.plan db join_sql) = Some Physical.Hash_join);
  Alcotest.(check bool) "tight, spill: hash agg survives" true
    (find_agg (Quill.Db.plan db agg_sql) = Some Physical.Hash_agg);
  Quill.Db.set_budget db None

(* --- Governor unit behaviour -------------------------------------------- *)

let test_none_is_inert () =
  let g = Governor.none in
  for _ = 1 to 10_000 do
    Governor.tick g;
    Governor.charge g 1_000_000;
    Governor.charge_row g [| Value.Str (String.make 64 'x') |]
  done;
  Governor.check g;
  Alcotest.(check int) "nothing accounted" 0 (Governor.used_bytes g)

let test_budget_accounting () =
  let g = Governor.create ~budget_bytes:1000 () in
  Governor.charge g 400;
  Alcotest.(check int) "accumulates" 400 (Governor.used_bytes g);
  Governor.charge g 300;
  Alcotest.(check int) "monotone" 700 (Governor.used_bytes g);
  (match Governor.charge g 400 with
  | () -> Alcotest.fail "overcharge did not abort"
  | exception Governor.Aborted Governor.Resource_exhausted -> ());
  (* The abort is sticky: every later poll re-raises the same reason. *)
  (match Governor.tick g with
  | () ->
      (* tick only polls every 256th call; check is immediate. *)
      ()
  | exception Governor.Aborted Governor.Resource_exhausted -> ());
  match Governor.check g with
  | () -> Alcotest.fail "abort state not sticky"
  | exception Governor.Aborted Governor.Resource_exhausted -> ()

let test_deadline_and_cancel_flag () =
  let g = Governor.create ~timeout_ms:1 () in
  Unix.sleepf 0.01;
  (match Governor.check g with
  | () -> Alcotest.fail "deadline did not fire"
  | exception Governor.Aborted Governor.Timeout -> ());
  (* The shared cancel flag is consumed by the governor that honors it. *)
  let flag = Atomic.make true in
  let g2 = Governor.create ~cancel:flag () in
  (match Governor.check g2 with
  | () -> Alcotest.fail "cancel flag ignored"
  | exception Governor.Aborted Governor.Cancelled -> ());
  Alcotest.(check bool) "flag consumed" false (Atomic.get flag);
  let g3 = Governor.create ~cancel:flag () in
  Governor.check g3

let test_row_bytes_estimate () =
  (* The estimate is coarse but must scale with payload size. *)
  let small = Governor.row_bytes [| Value.Int 1 |] in
  let big = Governor.row_bytes [| Value.Str (String.make 1000 'x') |] in
  Alcotest.(check bool) "positive" true (small > 0);
  Alcotest.(check bool) "payload counted" true (big > small + 900)

let () =
  Alcotest.run "governor"
    [
      ( "timeouts",
        [
          Alcotest.test_case "all engines, serial+parallel" `Quick
            test_timeout_all_engines;
          Alcotest.test_case "session default" `Quick test_session_timeout_default;
          Alcotest.test_case "adaptive path" `Quick test_adaptive_path_governed;
        ] );
      ( "cancellation",
        [ Alcotest.test_case "from another domain" `Quick test_cancel_from_other_domain ]
      );
      ( "budgets",
        [
          Alcotest.test_case "hash agg" `Quick test_budget_aborts_hash_agg;
          Alcotest.test_case "hash join build" `Quick test_budget_aborts_hash_join_build;
          Alcotest.test_case "picker sees budget" `Quick test_budget_aware_planning;
        ] );
      ( "unit",
        [
          Alcotest.test_case "none is inert" `Quick test_none_is_inert;
          Alcotest.test_case "budget accounting" `Quick test_budget_accounting;
          Alcotest.test_case "deadline + cancel flag" `Quick
            test_deadline_and_cancel_flag;
          Alcotest.test_case "row bytes" `Quick test_row_bytes_estimate;
        ] );
    ]
