(* Index scans: registry lifecycle, access-path selection, execution
   correctness across engines, and staleness under DML. *)

module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Index = Quill_storage.Index
module Physical = Quill_optimizer.Physical
module Picker = Quill_optimizer.Picker

let engines = [ Quill.Db.Volcano; Quill.Db.Vectorized; Quill.Db.Compiled ]

let mk_db ?(rows = 5000) () =
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db)
    (Quill_workload.Micro.ints_table ~name:"t" ~rows ~cols:3 ~seed:7 ());
  Quill.Db.analyze db "t";
  db

let rec has_index_scan = function
  | Physical.Index_scan _ -> true
  | Physical.Scan _ | Physical.One_row -> false
  | Physical.Filter (_, i, _) | Physical.Project (_, i, _) | Physical.Distinct (i, _) ->
      has_index_scan i
  | Physical.Join { left; right; _ } -> has_index_scan left || has_index_scan right
  | Physical.Aggregate { input; _ } | Physical.Window { input; _ }
  | Physical.Sort { input; _ } | Physical.Top_k { input; _ }
  | Physical.Limit { input; _ } ->
      has_index_scan input

let test_registry_lifecycle () =
  let db = mk_db ~rows:100 () in
  let cat = Quill.Db.catalog db in
  let reg = Index.Registry.create () in
  Alcotest.(check bool) "undeclared" true (Index.Registry.get reg cat ~table:"t" ~col:"c0" = None);
  Index.Registry.declare reg ~table:"t" ~col:"c0";
  Alcotest.(check (list string)) "declared" [ "c0" ] (Index.Registry.declared reg "t");
  let idx = Option.get (Index.Registry.get reg cat ~table:"t" ~col:"c0") in
  Alcotest.(check int) "size" 100 (Index.Ordered_index.size idx);
  (* Same version -> cached object. *)
  let idx2 = Option.get (Index.Registry.get reg cat ~table:"t" ~col:"c0") in
  Alcotest.(check bool) "cached" true (idx == idx2);
  (* Version bump -> rebuilt. *)
  Table.insert (Catalog.find_exn cat "t") [| Value.Int 9999; Value.Int 0; Value.Int 0 |];
  Catalog.bump cat;
  let idx3 = Option.get (Index.Registry.get reg cat ~table:"t" ~col:"c0") in
  Alcotest.(check bool) "rebuilt" true (idx != idx3);
  Alcotest.(check int) "fresh size" 101 (Index.Ordered_index.size idx3);
  Index.Registry.drop_table reg "t";
  Alcotest.(check (list string)) "dropped" [] (Index.Registry.declared reg "t")

let test_picker_chooses_index () =
  let db = mk_db () in
  ignore (Quill.Db.exec db "CREATE INDEX ON t (c0)");
  (* Selective range -> index scan. *)
  Alcotest.(check bool) "selective uses index" true
    (has_index_scan (Quill.Db.plan db "SELECT c1 FROM t WHERE c0 >= 10 AND c0 < 20"));
  (* Equality -> index scan. *)
  Alcotest.(check bool) "eq uses index" true
    (has_index_scan (Quill.Db.plan db "SELECT c1 FROM t WHERE c0 = 42"));
  (* Unselective predicate -> full scan. *)
  Alcotest.(check bool) "unselective stays scan" false
    (has_index_scan (Quill.Db.plan db "SELECT c1 FROM t WHERE c0 >= 0"));
  (* Predicate on a non-indexed column -> full scan. *)
  Alcotest.(check bool) "wrong column" false
    (has_index_scan (Quill.Db.plan db "SELECT c1 FROM t WHERE c1 = 42"));
  (* Ablation switch. *)
  Quill.Db.set_options db { Picker.default_options with Picker.enable_index = false };
  Alcotest.(check bool) "disabled" false
    (has_index_scan (Quill.Db.plan db "SELECT c1 FROM t WHERE c0 = 42"));
  Quill.Db.set_options db Picker.default_options

let test_results_match_full_scan () =
  let db = mk_db () in
  let queries =
    [ "SELECT c1 FROM t WHERE c0 = 123";
      "SELECT c1, c2 FROM t WHERE c0 >= 100 AND c0 <= 200";
      "SELECT c1 FROM t WHERE c0 > 100 AND c0 < 110 AND c2 > 500";
      "SELECT count(*) FROM t WHERE c0 BETWEEN 40 AND 90";
      "SELECT c1 FROM t WHERE c0 = 77 OR c0 = 78" (* OR: not index-servable *) ]
  in
  let before = List.map (fun q -> Tutil.table_rows (Quill.Db.query db q)) queries in
  ignore (Quill.Db.exec db "CREATE INDEX ON t (c0)");
  List.iter2
    (fun q expect ->
      List.iter
        (fun engine ->
          let got = Tutil.table_rows (Quill.Db.query db ~engine q) in
          if not (Tutil.same_rows_unordered expect got) then
            Alcotest.failf "index result mismatch on %s (%s)" q
              (Quill.Db.engine_name engine))
        engines)
    queries before

let test_param_bounds () =
  let db = mk_db () in
  ignore (Quill.Db.exec db "CREATE INDEX ON t (c0)");
  let sql = "SELECT c1 FROM t WHERE c0 = $1" in
  Alcotest.(check bool) "param bound uses index" true
    (has_index_scan (Quill.Db.plan db ~params:[| Value.Int 5 |] sql));
  let r = Quill.Db.query db ~params:[| Value.Int 5 |] sql in
  Alcotest.(check int) "one row (unique key)" 1 (Table.row_count r);
  (* A NULL bound matches nothing (index path must return empty, not all). *)
  let r2 = Quill.Db.query db "SELECT c1 FROM t WHERE c0 = NULL" in
  Alcotest.(check int) "null matches nothing" 0 (Table.row_count r2)

let test_dml_staleness () =
  let db = mk_db ~rows:500 () in
  ignore (Quill.Db.exec db "CREATE INDEX ON t (c0)");
  let count () =
    Table.row_count (Quill.Db.query db "SELECT c0 FROM t WHERE c0 >= 100 AND c0 < 110")
  in
  Alcotest.(check int) "before insert" 10 (count ());
  ignore (Quill.Db.exec db "INSERT INTO t VALUES (105, 1, 1)");
  Alcotest.(check int) "sees insert" 11 (count ());
  ignore (Quill.Db.exec db "DELETE FROM t WHERE c0 = 105");
  Alcotest.(check int) "sees delete" 9 (count ())

let test_create_index_errors () =
  let db = mk_db ~rows:10 () in
  Alcotest.(check bool) "bad column" true
    (try
       ignore (Quill.Db.exec db "CREATE INDEX ON t (nope)");
       false
     with Quill.Db.Error _ -> true);
  Alcotest.(check bool) "bad table" true
    (try
       ignore (Quill.Db.exec db "CREATE INDEX ON missing (c0)");
       false
     with Quill.Db.Error _ -> true)

let test_index_on_strings_and_dates () =
  let db = Tutil.random_db ~seed:55 ~rows:400 in
  let before_tag = Tutil.table_rows (Quill.Db.query db "SELECT id FROM r WHERE tag = 'beta'") in
  let before_dt =
    Tutil.table_rows
      (Quill.Db.query db "SELECT id FROM r WHERE dt >= DATE '1994-10-01' AND dt < DATE '1994-11-01'")
  in
  ignore (Quill.Db.exec db "CREATE INDEX ON r (tag)");
  ignore (Quill.Db.exec db "CREATE INDEX ON r (dt)");
  let after_tag = Tutil.table_rows (Quill.Db.query db "SELECT id FROM r WHERE tag = 'beta'") in
  let after_dt =
    Tutil.table_rows
      (Quill.Db.query db "SELECT id FROM r WHERE dt >= DATE '1994-10-01' AND dt < DATE '1994-11-01'")
  in
  Alcotest.(check bool) "string index" true (Tutil.same_rows_unordered before_tag after_tag);
  Alcotest.(check bool) "date index" true (Tutil.same_rows_unordered before_dt after_dt)

let prop_index_vs_scan =
  Tutil.qtest ~count:60 "index scan = full scan on random ranges"
    QCheck2.Gen.(
      let* lo = int_range 0 999 in
      let* len = int_range 0 200 in
      pure (lo, lo + len))
    (fun (lo, hi) ->
      let db = mk_db ~rows:1000 () in
      let sql = Printf.sprintf "SELECT c1 FROM t WHERE c0 >= %d AND c0 <= %d" lo hi in
      let scan = Tutil.table_rows (Quill.Db.query db sql) in
      ignore (Quill.Db.exec db "CREATE INDEX ON t (c0)");
      let indexed = Tutil.table_rows (Quill.Db.query db sql) in
      Tutil.same_rows_unordered scan indexed)

let rec has_sort = function
  | Physical.Sort _ | Physical.Top_k _ -> true
  | Physical.Scan _ | Physical.Index_scan _ | Physical.One_row -> false
  | Physical.Filter (_, i, _) | Physical.Project (_, i, _) | Physical.Distinct (i, _) ->
      has_sort i
  | Physical.Join { left; right; _ } -> has_sort left || has_sort right
  | Physical.Aggregate { input; _ } | Physical.Window { input; _ }
  | Physical.Limit { input; _ } ->
      has_sort input

let test_sort_elision () =
  let db = mk_db () in
  ignore (Quill.Db.exec db "CREATE INDEX ON t (c0)");
  (* Selective enough that the index path beats the typed-batch filtered
     scan (whose per-row cost dropped with the unboxed kernels, moving the
     break-even towards more selective predicates). *)
  let sql = "SELECT c0, c1 FROM t WHERE c0 >= 100 AND c0 < 130 ORDER BY c0" in
  (* The index scan already delivers c0-ascending order: no Sort node. *)
  let plan = Quill.Db.plan db sql in
  Alcotest.(check bool) "index scan used" true (has_index_scan plan);
  Alcotest.(check bool) "sort elided" false (has_sort plan);
  (* And the output is genuinely sorted, matching the explicit-sort plan. *)
  let got = Tutil.table_rows (Quill.Db.query db sql) in
  Quill.Db.set_options db { Picker.default_options with Picker.enable_index = false };
  let reference = Tutil.table_rows (Quill.Db.query db sql) in
  Quill.Db.set_options db Picker.default_options;
  Alcotest.(check bool) "sorted output" true
    (Array.to_list (Array.map (fun r -> r.(0)) got)
    = Array.to_list (Array.map (fun r -> r.(0)) reference));
  (* DESC order is not satisfied by an ascending index: Sort stays. *)
  let plan_desc =
    Quill.Db.plan db "SELECT c0 FROM t WHERE c0 >= 100 AND c0 < 150 ORDER BY c0 DESC"
  in
  Alcotest.(check bool) "desc keeps sort" true (has_sort plan_desc);
  (* ORDER BY indexed col + LIMIT becomes a streaming limit (no TopK)
     when the index path is selective enough to be chosen. *)
  let plan_limit =
    Quill.Db.plan db "SELECT c0 FROM t WHERE c0 >= 100 AND c0 < 140 ORDER BY c0 LIMIT 5"
  in
  Alcotest.(check bool) "index chosen" true (has_index_scan plan_limit);
  Alcotest.(check bool) "no topk either" false (has_sort plan_limit);
  let r = Quill.Db.query db "SELECT c0 FROM t WHERE c0 >= 100 AND c0 < 200 ORDER BY c0 LIMIT 5" in
  Alcotest.(check bool) "limit works" true
    (Array.to_list (Array.map (fun row -> row.(0)) (Tutil.table_rows r))
    = [ Value.Int 100; Value.Int 101; Value.Int 102; Value.Int 103; Value.Int 104 ])

let () =
  Alcotest.run "index"
    [
      ("registry", [ Alcotest.test_case "lifecycle" `Quick test_registry_lifecycle ]);
      ( "picker",
        [
          Alcotest.test_case "access path choice" `Quick test_picker_chooses_index;
          Alcotest.test_case "create errors" `Quick test_create_index_errors;
        ] );
      ( "execution",
        [
          Alcotest.test_case "matches full scan" `Quick test_results_match_full_scan;
          Alcotest.test_case "param bounds" `Quick test_param_bounds;
          Alcotest.test_case "dml staleness" `Quick test_dml_staleness;
          Alcotest.test_case "strings and dates" `Quick test_index_on_strings_and_dates;
          prop_index_vs_scan;
          Alcotest.test_case "sort elision" `Quick test_sort_elision;
        ] );
    ]
