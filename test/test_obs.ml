(* Observability layer: span tracer units (nesting, ordering, exception
   safety, disabled no-op), metrics registry units (counters, gauges,
   histograms, interning, type clash), Chrome-trace JSON shape (validated
   with a small JSON parser), and the enriched EXPLAIN ANALYZE surface. *)

module Trace = Quill_obs.Trace
module Metrics = Quill_obs.Metrics

(* --- A minimal JSON parser, enough to validate trace exports. --------- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail m = raise (Bad_json (Printf.sprintf "%s at %d" m !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); J_obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); J_arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elements [])
        end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let field obj name =
  match obj with
  | J_obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing field %S" name)
  | _ -> Alcotest.fail "not an object"

let str = function J_str s -> s | _ -> Alcotest.fail "not a string"
let num = function J_num f -> f | _ -> Alcotest.fail "not a number"

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let count_substring hay needle =
  let nl = String.length needle in
  let n = ref 0 in
  for i = 0 to String.length hay - nl do
    if String.sub hay i nl = needle then incr n
  done;
  !n

(* --- Tracer ----------------------------------------------------------- *)

let span_names spans = List.map (fun s -> s.Trace.name) spans

let test_span_nesting () =
  Trace.set_enabled true;
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner1" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.instant "mark";
      Trace.with_span "inner2" (fun () ->
          Trace.with_span "leaf" (fun () -> ())));
  Trace.set_enabled false;
  let spans = Trace.spans () in
  Alcotest.(check (list string))
    "open order" [ "outer"; "inner1"; "mark"; "inner2"; "leaf" ]
    (span_names spans);
  let by_name n = List.find (fun s -> s.Trace.name = n) spans in
  let outer = by_name "outer" in
  Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
  Alcotest.(check int) "outer is root" (-1) outer.Trace.parent;
  List.iter
    (fun n ->
      let s = by_name n in
      Alcotest.(check int) (n ^ " depth") 1 s.Trace.depth;
      Alcotest.(check int) (n ^ " parent") outer.Trace.seq s.Trace.parent)
    [ "inner1"; "mark"; "inner2" ];
  let leaf = by_name "leaf" in
  Alcotest.(check int) "leaf depth" 2 leaf.Trace.depth;
  Alcotest.(check int) "leaf parent" (by_name "inner2").Trace.seq leaf.Trace.parent;
  (* Children are contained in the parent's time window. *)
  List.iter
    (fun n ->
      let s = by_name n in
      Alcotest.(check bool) (n ^ " starts after outer") true
        (s.Trace.start >= outer.Trace.start);
      Alcotest.(check bool) (n ^ " ends within outer") true
        (s.Trace.start +. s.Trace.dur
        <= outer.Trace.start +. outer.Trace.dur +. 1e-9))
    [ "inner1"; "inner2"; "leaf" ]

let test_span_exception_safety () =
  Trace.set_enabled true;
  (try Trace.with_span "boom" (fun () -> failwith "bang") with Failure _ -> ());
  Trace.with_span "after" (fun () -> ());
  Trace.set_enabled false;
  let spans = Trace.spans () in
  Alcotest.(check (list string)) "both recorded" [ "boom"; "after" ]
    (span_names spans);
  let after = List.nth spans 1 in
  Alcotest.(check int) "stack unwound: after is top-level" 0 after.Trace.depth;
  Alcotest.(check int) "after has no parent" (-1) after.Trace.parent

let test_disabled_noop () =
  Trace.set_enabled false;
  Trace.clear ();
  let r = Trace.with_span "invisible" (fun () -> 41 + 1) in
  Trace.instant "also invisible";
  Alcotest.(check int) "f still runs" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()));
  Alcotest.(check string) "empty export" "[]" (Trace.to_chrome_json ());
  Alcotest.(check bool) "reports disabled" false (Trace.enabled ())

let test_reenable_fresh_epoch () =
  Trace.set_enabled true;
  Trace.with_span "first" (fun () -> ());
  Trace.set_enabled false;
  Alcotest.(check (list string)) "survives disable" [ "first" ]
    (span_names (Trace.spans ()));
  Trace.set_enabled true;
  (* re-enabling starts a fresh trace *)
  Trace.with_span "second" (fun () -> ());
  Trace.set_enabled false;
  Alcotest.(check (list string)) "fresh buffer" [ "second" ]
    (span_names (Trace.spans ()))

let test_chrome_json_shape () =
  Trace.set_enabled true;
  Trace.with_span ~cat:"compile" ~args:[ ("sql", "select \"x\"\n") ] "codegen"
    (fun () -> Trace.instant "tick");
  Trace.set_enabled false;
  let text = Trace.to_chrome_json () in
  match parse_json text with
  | J_arr [ span; instant ] ->
      Alcotest.(check string) "span name" "codegen" (str (field span "name"));
      Alcotest.(check string) "span cat" "compile" (str (field span "cat"));
      Alcotest.(check string) "complete event" "X" (str (field span "ph"));
      Alcotest.(check bool) "ts >= 0" true (num (field span "ts") >= 0.0);
      Alcotest.(check bool) "dur >= 0" true (num (field span "dur") >= 0.0);
      Alcotest.(check bool) "pid" true (num (field span "pid") = 1.0);
      Alcotest.(check bool) "tid" true (num (field span "tid") = 1.0);
      Alcotest.(check string) "args round-trip escaping" "select \"x\"\n"
        (str (field (field span "args") "sql"));
      Alcotest.(check string) "instant name" "tick" (str (field instant "name"));
      Alcotest.(check string) "instant event" "i" (str (field instant "ph"));
      Alcotest.(check string) "instant scope" "t" (str (field instant "s"))
  | J_arr l -> Alcotest.failf "expected 2 events, got %d" (List.length l)
  | _ -> Alcotest.fail "not a JSON array"
  | exception Bad_json m -> Alcotest.failf "invalid JSON (%s): %s" m text

(* --- Metrics ---------------------------------------------------------- *)

let test_counter () =
  let c = Metrics.counter "test.obs.counter" in
  let v0 = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.value c - v0);
  (* Interning by name returns the same underlying cell. *)
  let c' = Metrics.counter "test.obs.counter" in
  Metrics.incr c';
  Alcotest.(check int) "same cell" 43 (Metrics.value c - v0)

let test_gauge () =
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set g 7;
  Alcotest.(check int) "set" 7 (Metrics.gauge_value g);
  Metrics.set g 3;
  Alcotest.(check int) "overwrite" 3 (Metrics.gauge_value g)

let test_type_clash () =
  let _ = Metrics.counter "test.obs.clash" in
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "metric \"test.obs.clash\" registered with another type")
    (fun () -> ignore (Metrics.gauge "test.obs.clash"))

let test_histogram () =
  let h = Metrics.histogram "test.obs.hist" in
  let samples = [ 1e-6; 1e-3; 0.5; 0.5; 2.0 ] in
  List.iter (Metrics.observe h) samples;
  Alcotest.(check int) "count" 5 (Metrics.observations h);
  let total = List.fold_left ( +. ) 0.0 samples in
  Alcotest.(check bool) "sum" true (Float.abs (Metrics.sum h -. total) < 1e-9);
  Alcotest.(check bool) "mean" true
    (Float.abs (Metrics.mean h -. (total /. 5.0)) < 1e-9);
  (* Quantile bounds: the p99 bucket bound must cover the max sample, and
     the median bound must not be absurdly above it. *)
  Alcotest.(check bool) "p99 covers max" true (Metrics.quantile h 0.99 >= 2.0);
  Alcotest.(check bool) "median sane" true
    (Metrics.quantile h 0.5 >= 1e-3 && Metrics.quantile h 0.5 <= 2.0);
  (* Bucket geometry. *)
  Alcotest.(check int) "tiny values in bucket 0" 0 (Metrics.bucket_index 1e-9);
  Alcotest.(check bool) "bounds increase" true
    (Metrics.bucket_bound 3 > Metrics.bucket_bound 2);
  Alcotest.(check bool) "last bound open" true
    (Metrics.bucket_bound (Metrics.bucket_count - 1) = Float.infinity);
  Alcotest.(check bool) "index within range" true
    (Metrics.bucket_index 1e12 = Metrics.bucket_count - 1)

let test_snapshot_and_render () =
  let c = Metrics.counter "test.obs.snap" in
  Metrics.add c 5;
  let entries = Metrics.snapshot () in
  let found =
    List.exists
      (function
        | Metrics.Counter_value ("test.obs.snap", v) -> v >= 5
        | _ -> false)
      entries
  in
  Alcotest.(check bool) "snapshot has counter" true found;
  let names =
    List.map
      (function
        | Metrics.Counter_value (n, _)
        | Metrics.Gauge_value (n, _)
        | Metrics.Histogram_value (n, _, _, _) -> n)
      entries
  in
  Alcotest.(check bool) "sorted by name" true
    (List.sort compare names = names);
  let text = Metrics.render () in
  Alcotest.(check bool) "render mentions metric" true
    (contains text "test.obs.snap")

(* --- Full pipeline: spans, instants, EXPLAIN ANALYZE ------------------- *)

let test_query_trace_pipeline () =
  let db = Tutil.random_db ~seed:31 ~rows:120 in
  Quill.Db.set_tracing true;
  ignore (Quill.Db.query db "SELECT tag, count(*) FROM r GROUP BY tag");
  Quill.Db.set_tracing false;
  let names = span_names (Trace.spans ()) in
  List.iter
    (fun phase ->
      Alcotest.(check bool) ("phase " ^ phase) true (List.mem phase names))
    [ "query"; "parse"; "bind"; "rewrite"; "pick"; "execute" ];
  (* The whole export parses as JSON. *)
  match parse_json (Quill.Db.trace_json ()) with
  | J_arr events -> Alcotest.(check bool) "events" true (List.length events >= 6)
  | _ -> Alcotest.fail "trace_json: not an array"
  | exception Bad_json m -> Alcotest.failf "trace_json invalid: %s" m

let test_adaptive_trace_instants () =
  let db = Tutil.random_db ~seed:32 ~rows:100 in
  let sql = "SELECT k, sum(v) FROM r GROUP BY k" in
  ignore (Quill.Db.query_adaptive db sql);
  Quill.Db.set_tracing true;
  ignore (Quill.Db.query_adaptive db sql);
  Quill.Db.set_tracing false;
  let spans = Trace.spans () in
  Alcotest.(check bool) "plan-cache-hit instant" true
    (List.exists
       (fun s -> s.Trace.name = "plan-cache-hit" && s.Trace.marker)
       spans)

let test_explain_analyze_rich () =
  let db = Tutil.random_db ~seed:33 ~rows:250 in
  (* Two joins plus a group-by: the acceptance-criteria query shape. *)
  let sql =
    "SELECT r.tag, count(*) FROM r, s, r r2 \
     WHERE r.id = s.id AND r.k = r2.k GROUP BY r.tag"
  in
  let out = Quill.Db.explain db ~analyze:true sql in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("has " ^ needle) true (contains out needle))
    [ "est rows"; "actual rows"; "time (self)"; "time (cumulative)";
      "rejected candidates"; "HashJoin"; "HashAgg" ];
  Alcotest.(check bool) "at least two losing candidates" true
    (count_substring out "cost=" >= 2)

let test_metrics_move_on_query () =
  let db = Tutil.random_db ~seed:34 ~rows:80 in
  let queries = Metrics.counter "quill.db.queries" in
  let batches = Metrics.counter "quill.exec.batches" in
  let q0 = Metrics.value queries and b0 = Metrics.value batches in
  ignore (Quill.Db.query db ~engine:Quill.Db.Vectorized "SELECT count(*) FROM r");
  Alcotest.(check bool) "query counted" true (Metrics.value queries > q0);
  Alcotest.(check bool) "batches counted" true (Metrics.value batches > b0);
  let text = Quill.Db.metrics_text () in
  Alcotest.(check bool) "rendered" true (contains text "quill.db.queries")

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "re-enable fresh" `Quick test_reenable_fresh_epoch;
          Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "type clash" `Quick test_type_clash;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "snapshot/render" `Quick test_snapshot_and_render;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "query spans" `Quick test_query_trace_pipeline;
          Alcotest.test_case "adaptive instants" `Quick test_adaptive_trace_instants;
          Alcotest.test_case "explain analyze" `Quick test_explain_analyze_rich;
          Alcotest.test_case "metrics move" `Quick test_metrics_move_on_query;
        ] );
    ]
