(* The morsel-driven parallel execution subsystem (quill.parallel):
   pool/dispatcher/driver units, partial-aggregate merging, and
   parallel-vs-serial agreement of the engines on scan/filter, grouped
   aggregation, hash joins and the TPC-H analogs.

   The suite must pass regardless of the machine's core count: on a
   single-core box the pool still spawns domains and the morsel dispatcher
   still interleaves, so the correctness surface (merge logic, order
   re-assembly, empty morsels, NULL handling) is fully exercised even when
   there is no speedup to observe. *)

module Value = Quill_storage.Value
module Catalog = Quill_storage.Catalog
module Pool = Quill_parallel.Pool
module Morsel = Quill_parallel.Morsel
module Driver = Quill_parallel.Driver
module Agg_algos = Quill_exec.Agg_algos
module Lplan = Quill_plan.Lplan

(* --- Float-tolerant row comparison -------------------------------------

   Parallel aggregation reorders float additions, so SUM/AVG floats may
   differ in the last bits; everything else must match exactly. *)

let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.equal a b

let rows_close a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun r1 r2 -> Array.for_all2 value_close r1 r2) a b

(* Unordered variant: sort both sides first.  Polymorphic compare on rows
   is a total order; grouped results have exact (non-float) keys leading,
   so epsilon-sized float jitter cannot flip the sort. *)
let rows_close_unordered a b =
  let norm rows =
    let c = Array.copy rows in
    Array.sort compare c;
    c
  in
  rows_close (norm a) (norm b)

let check_close ~ordered msg a b =
  let ok = if ordered then rows_close a b else rows_close_unordered a b in
  if not ok then
    Alcotest.failf "%s:\nserial:\n%s\nparallel:\n%s" msg (Tutil.rows_to_string a)
      (Tutil.rows_to_string b)

(* --- Pool --------------------------------------------------------------- *)

let test_parse_env () =
  let check s exp = Alcotest.(check (option int)) s exp (Pool.parse_env s) in
  check "4" (Some 4);
  check " 8 " (Some 8);
  check "1" (Some 1);
  check "0" None;
  check "-3" None;
  check "abc" None;
  check "" None;
  check "99999" (Some Pool.max_parallelism)

let test_set_parallelism_clamps () =
  let before = Pool.parallelism () in
  Pool.set_parallelism 0;
  Alcotest.(check int) "clamped up" 1 (Pool.parallelism ());
  Pool.set_parallelism 100_000;
  Alcotest.(check int) "clamped down" Pool.max_parallelism (Pool.parallelism ());
  Pool.set_parallelism 3;
  Alcotest.(check int) "set" 3 (Pool.parallelism ());
  Pool.set_parallelism before

let test_run_covers_all_slots () =
  let workers = 5 in
  let hits = Array.make workers 0 in
  Pool.run ~workers (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each slot once" (Array.make workers 1) hits

let test_run_reraises () =
  Alcotest.check_raises "worker exception surfaces" (Failure "boom") (fun () ->
      Pool.run ~workers:4 (fun i -> if i = 2 then failwith "boom"))

let test_nested_run_is_serial () =
  (* A parallel region reached from inside a worker degrades to inline
     serial execution instead of deadlocking the pool. *)
  let total = Atomic.make 0 in
  Pool.run ~workers:3 (fun _ ->
      Pool.run ~workers:4 (fun _ -> ignore (Atomic.fetch_and_add total 1)));
  Alcotest.(check int) "all inner slots ran" 12 (Atomic.get total)

let test_shutdown_and_revive () =
  Pool.run ~workers:3 (fun _ -> ());
  Alcotest.(check bool) "workers spawned" true (Pool.spawned () >= 2);
  Pool.shutdown ();
  Alcotest.(check int) "all joined" 0 (Pool.spawned ());
  Pool.shutdown ();
  (* idempotent *)
  let n = ref 0 in
  let lock = Mutex.create () in
  Pool.run ~workers:2 (fun _ ->
      Mutex.lock lock;
      incr n;
      Mutex.unlock lock);
  Alcotest.(check int) "pool revived after shutdown" 2 !n;
  Pool.shutdown ()

(* --- Morsel dispatcher --------------------------------------------------- *)

let test_morsel_iter_covers_range () =
  Morsel.with_size 7 (fun () ->
      let n = 100 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Morsel.iter ~workers:4 ~n (fun ~worker:_ ~lo ~hi ->
          Alcotest.(check bool) "hi - lo <= morsel" true (hi - lo <= 7);
          for i = lo to hi - 1 do
            ignore (Atomic.fetch_and_add hits.(i) 1)
          done);
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "row %d exactly once" i) 1 (Atomic.get c))
        hits)

let test_morsel_iter_empty () =
  Morsel.iter ~workers:4 ~n:0 (fun ~worker:_ ~lo:_ ~hi:_ ->
      Alcotest.fail "no morsels expected for n = 0")

let test_with_size_restores () =
  let before = !Morsel.size in
  (try Morsel.with_size 3 (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "restored after exception" before !Morsel.size

let test_effective_workers () =
  Morsel.with_size 10 (fun () ->
      Alcotest.(check int) "capped by morsel count" 3
        (Morsel.effective_workers ~workers:8 25);
      Alcotest.(check int) "at least one" 1 (Morsel.effective_workers ~workers:8 0);
      Alcotest.(check int) "workers bound" 2 (Morsel.effective_workers ~workers:2 1000))

(* --- Drivers ------------------------------------------------------------- *)

let test_fold_sums () =
  Morsel.with_size 16 (fun () ->
      let n = 10_000 in
      let total =
        Driver.fold ~workers:4 ~n
          ~init:(fun () -> ref 0)
          ~range:(fun acc lo hi ->
            for i = lo to hi - 1 do
              acc := !acc + i
            done)
          ~merge:(fun dst src -> dst := !dst + !src)
      in
      Alcotest.(check int) "sum 0..n-1" (n * (n - 1) / 2) !total)

let test_fold_empty_input () =
  (* The serial path may call [range st 0 0]; it must never see rows or
     merge anything. *)
  let st =
    Driver.fold ~workers:4 ~n:0
      ~init:(fun () -> ref 42)
      ~range:(fun _ lo hi -> if hi > lo then Alcotest.fail "nonempty range on n = 0")
      ~merge:(fun _ _ -> Alcotest.fail "no merge expected")
  in
  Alcotest.(check int) "init state returned" 42 !st

let test_collect_preserves_order () =
  Morsel.with_size 13 (fun () ->
      let n = 2_000 in
      (* Emit only every third index; the result must be in ascending order
         exactly as a serial sweep would produce. *)
      let out =
        Driver.collect ~workers:4 ~n ~dummy:(-1) (fun ~lo ~hi ~emit ->
            for i = lo to hi - 1 do
              if i mod 3 = 0 then emit i
            done)
      in
      let expect = Array.init ((n + 2) / 3) (fun k -> 3 * k) in
      Alcotest.(check (array int)) "row order preserved" expect out)

let test_for_range_scatter () =
  Morsel.with_size 8 (fun () ->
      let n = 500 in
      let out = Array.make n 0 in
      Driver.for_range ~workers:4 ~n (fun i -> out.(i) <- i * i);
      Alcotest.(check bool) "all slots written" true
        (Array.for_all Fun.id (Array.mapi (fun i v -> v = i * i) out)))

(* --- Partial aggregate merging ------------------------------------------- *)

let mk_spec ?(distinct = false) ?arg kind out_dtype =
  { Agg_algos.kind; arg; distinct; out_dtype }

let col0 (row : Value.t array) = row.(0)

let feed_all spec rows =
  let st = Agg_algos.new_state spec in
  List.iter (Agg_algos.feed spec st) rows;
  st

let test_merge_state_matches_serial () =
  (* Feeding rows [a @ b] into one state must equal feeding a and b into
     separate states and merging — including NULL inputs, all-NULL
     partials and empty partials (the empty-morsel case). *)
  let specs =
    [ mk_spec Lplan.Count Value.Int_t;  (* COUNT star *)
      mk_spec ~arg:col0 Lplan.Count Value.Int_t;
      mk_spec ~arg:col0 Lplan.Sum Value.Int_t;
      mk_spec ~arg:col0 Lplan.Avg Value.Float_t;
      mk_spec ~arg:col0 Lplan.Min Value.Int_t;
      mk_spec ~arg:col0 Lplan.Max Value.Int_t ]
  in
  let parts =
    [ [ [| Value.Int 5 |]; [| Value.Null |]; [| Value.Int (-2) |] ];
      [];  (* empty morsel *)
      [ [| Value.Null |]; [| Value.Null |] ];  (* all-NULL morsel *)
      [ [| Value.Int 9 |] ] ]
  in
  let whole = List.concat parts in
  List.iter
    (fun spec ->
      let serial = feed_all spec whole in
      let merged =
        match List.map (feed_all spec) parts with
        | [] -> assert false
        | first :: rest ->
            List.iter (Agg_algos.merge_state spec first) rest;
            first
      in
      Alcotest.check Tutil.value_testable "same finish"
        (Agg_algos.finish spec serial) (Agg_algos.finish spec merged))
    specs

let test_merge_state_rejects_distinct () =
  let spec = mk_spec ~distinct:true ~arg:col0 Lplan.Count Value.Int_t in
  let a = Agg_algos.new_state spec and b = Agg_algos.new_state spec in
  Alcotest.check_raises "DISTINCT cannot merge"
    (Invalid_argument "Agg_algos.merge_state: DISTINCT states cannot be merged")
    (fun () -> Agg_algos.merge_state spec a b)

let test_par_hash_agg_matches_serial () =
  Morsel.with_size 16 (fun () ->
      let rng = Quill_util.Rng.create 11 in
      let rows =
        Array.init 3000 (fun _ ->
            [| (if Quill_util.Rng.int rng 8 = 0 then Value.Null
                else Value.Int (Quill_util.Rng.int rng 7));
               Value.Int (Quill_util.Rng.int rng 1000) |])
      in
      let keys = [ (fun (r : Value.t array) -> r.(0)) ] in
      let arg = Some (fun (r : Value.t array) -> r.(1)) in
      let specs =
        [ mk_spec Lplan.Count Value.Int_t;
          mk_spec ?arg Lplan.Sum Value.Int_t;
          mk_spec ?arg Lplan.Min Value.Int_t ]
      in
      let serial = Quill_util.Vec.to_array (Agg_algos.hash_agg ~keys ~specs rows) in
      let par =
        Quill_util.Vec.to_array (Agg_algos.par_hash_agg ~workers:4 ~keys ~specs rows)
      in
      check_close ~ordered:false "par_hash_agg" serial par)

(* --- Engine-level agreement: parallel == serial -------------------------- *)

(* Run [sql] serially on Volcano (the never-parallel reference) and at
   parallelism [w] on the vectorized and compiled engines, with a small
   morsel size so modest tables still split into many morsels (empty and
   partial morsels included). *)
let check_query_parallel ?(morsel = 64) ?(ordered = false) db sql =
  Quill.Db.set_parallelism db 1;
  let reference = Tutil.table_rows (Quill.Db.query db ~engine:Quill.Db.Volcano sql) in
  List.iter
    (fun w ->
      Quill.Db.set_parallelism db w;
      Morsel.with_size morsel (fun () ->
          List.iter
            (fun engine ->
              let got = Tutil.table_rows (Quill.Db.query db ~engine sql) in
              check_close ~ordered
                (Printf.sprintf "%s @ parallelism %d (%s)" sql w
                   (Quill.Db.engine_name engine))
                reference got)
            [ Quill.Db.Vectorized; Quill.Db.Compiled ]))
    [ 1; 2; Pool.hardware_parallelism () + 2 ];
  Quill.Db.set_parallelism db 1

let test_parallel_scan_filter () =
  let db = Tutil.random_db ~seed:31 ~rows:5_000 in
  check_query_parallel db "SELECT id, k, v FROM r WHERE k > 4 AND v < 60.0";
  check_query_parallel ~ordered:true db
    "SELECT id, tag FROM r WHERE tag LIKE 'a%' ORDER BY id";
  (* Selective-to-empty result, exercising all-empty morsel chunks. *)
  check_query_parallel db "SELECT id FROM r WHERE k > 1000"

let test_parallel_grouped_agg () =
  let db = Tutil.random_db ~seed:32 ~rows:5_000 in
  (* NULL keys and NULL agg inputs; unordered group emission. *)
  check_query_parallel db
    "SELECT k, count(*), count(v), sum(id), min(v), max(v), avg(v) FROM r GROUP BY k";
  check_query_parallel ~ordered:true db
    "SELECT k, count(*) AS n FROM r WHERE dt >= DATE '1994-09-01' GROUP BY k ORDER BY k"

let test_parallel_global_agg () =
  let db = Quill.Db.create () in
  Catalog.add (Quill.Db.catalog db)
    (Quill_workload.Micro.grouped_table ~rows:50_000 ~groups:100 ~seed:5 ());
  check_query_parallel db
    "SELECT count(*), sum(v), min(v), max(v), avg(v) FROM grouped WHERE v > 250";
  (* Empty input: a global aggregate still emits exactly one row. *)
  check_query_parallel db "SELECT count(*), sum(v), min(v) FROM grouped WHERE v > 99999"

let test_parallel_hash_join () =
  let db = Quill.Db.create () in
  let build, probe = Quill_workload.Micro.keyed_pair ~build_rows:500 ~probe_rows:8_000 ~seed:6 () in
  Catalog.add (Quill.Db.catalog db) build;
  Catalog.add (Quill.Db.catalog db) probe;
  check_query_parallel db
    "SELECT b_k, sum(p_payload) FROM build_side JOIN probe_side ON b_k = p_k GROUP BY b_k"
    ~morsel:128;
  check_query_parallel ~ordered:true db
    "SELECT p_k, b_payload FROM probe_side LEFT JOIN build_side ON p_k = b_k ORDER BY p_k, b_payload"

let test_parallel_tpch () =
  let db = Quill.Db.create () in
  Quill_workload.Tpch.load (Quill.Db.catalog db) ~sf:0.01 ~seed:7;
  List.iter
    (fun (name, sql) ->
      ignore name;
      check_query_parallel ~morsel:97 db sql)
    Quill_workload.Tpch.queries

let test_db_close_revives () =
  let db = Tutil.random_db ~seed:33 ~rows:2_000 in
  Quill.Db.set_parallelism db 4;
  let sql = "SELECT k, count(*) FROM r GROUP BY k" in
  let a =
    Morsel.with_size 32 (fun () -> Tutil.table_rows (Quill.Db.query db sql))
  in
  Quill.Db.close db;
  Alcotest.(check int) "pool drained on close" 0 (Pool.spawned ());
  (* A query after close lazily revives the pool. *)
  let b =
    Morsel.with_size 32 (fun () -> Tutil.table_rows (Quill.Db.query db sql))
  in
  check_close ~ordered:false "same result after close/revive" a b;
  Quill.Db.set_parallelism db 1;
  Quill.Db.close db

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "parse_env" `Quick test_parse_env;
          Alcotest.test_case "set_parallelism clamps" `Quick test_set_parallelism_clamps;
          Alcotest.test_case "run covers all slots" `Quick test_run_covers_all_slots;
          Alcotest.test_case "run re-raises" `Quick test_run_reraises;
          Alcotest.test_case "nested run is serial" `Quick test_nested_run_is_serial;
          Alcotest.test_case "shutdown and revive" `Quick test_shutdown_and_revive ] );
      ( "morsel",
        [ Alcotest.test_case "iter covers range once" `Quick test_morsel_iter_covers_range;
          Alcotest.test_case "iter on empty range" `Quick test_morsel_iter_empty;
          Alcotest.test_case "with_size restores" `Quick test_with_size_restores;
          Alcotest.test_case "effective_workers" `Quick test_effective_workers ] );
      ( "driver",
        [ Alcotest.test_case "fold sums" `Quick test_fold_sums;
          Alcotest.test_case "fold empty input" `Quick test_fold_empty_input;
          Alcotest.test_case "collect preserves order" `Quick test_collect_preserves_order;
          Alcotest.test_case "for_range scatter" `Quick test_for_range_scatter ] );
      ( "agg merge",
        [ Alcotest.test_case "merge matches serial" `Quick test_merge_state_matches_serial;
          Alcotest.test_case "merge rejects DISTINCT" `Quick test_merge_state_rejects_distinct;
          Alcotest.test_case "par_hash_agg" `Quick test_par_hash_agg_matches_serial ] );
      ( "engines",
        [ Alcotest.test_case "scan+filter" `Quick test_parallel_scan_filter;
          Alcotest.test_case "grouped agg" `Quick test_parallel_grouped_agg;
          Alcotest.test_case "global agg" `Quick test_parallel_global_agg;
          Alcotest.test_case "hash join" `Quick test_parallel_hash_join;
          Alcotest.test_case "tpch analogs" `Quick test_parallel_tpch;
          Alcotest.test_case "db close revives pool" `Quick test_db_close_revives ] ) ]
