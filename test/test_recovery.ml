(* Crash-matrix and fuzz tests for durable recovery.

   The harness runs a DML workload against a durable database twice: once
   fault-free to record the logical state after every step (plus the
   cumulative byte/op counts, so crash points can be chosen
   deterministically), then again with a power cut armed at a chosen
   point.  After the "reboot" ([Sim_fs.reset]), [Db.open_durable] must
   recover a consistent prefix of the acknowledged workload:

     recovered state = state after k steps,
     where k = #acknowledged steps, or #acknowledged + 1 when the
     in-flight statement's commit record made it to disk whole.

   Anything else — a half-applied statement, a lost acknowledged commit,
   a crash during recovery itself — fails the test. *)

module Db = Quill.Db
module Sim_fs = Quill_storage.Sim_fs
module Table = Quill_storage.Table
module Schema = Quill_storage.Schema
module Catalog = Quill_storage.Catalog
module Value = Quill_storage.Value

let tmpdir () =
  let p = Filename.temp_file "quill_rec" "" in
  Sys.remove p;
  p

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else Sys.remove path

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Canonical rendering of a database's logical state: every table with
   its schema and (sorted) rows, so two databases compare as strings. *)
let dump db =
  let cat = Db.catalog db in
  Catalog.names cat |> List.sort compare
  |> List.map (fun name ->
         let t = Option.get (Catalog.find cat name) in
         let rows =
           Table.to_row_list t
           |> List.map (fun r -> Array.to_list (Array.map Value.to_string r))
           |> List.sort compare
         in
         name ^ " " ^ Schema.to_string (Table.schema t) ^ "\n"
         ^ String.concat "\n" (List.map (String.concat "|") rows))
  |> String.concat "\n===\n"

type step = Stmt of string | Checkpoint

let apply db = function
  | Stmt sql -> ignore (Db.exec db sql)
  | Checkpoint -> Db.checkpoint db

(* Fault-free instrumented run in a fresh [dir]: returns the dump after
   every step (index 0 = freshly opened, empty) and the cumulative
   byte/op counters at each step boundary.  Both runs of a workload are
   byte-for-byte deterministic, so these marks locate any boundary in
   the faulted run too. *)
let run_clean steps dir =
  Sim_fs.reset ();
  let db, _ = Db.open_durable dir in
  let dumps = ref [ dump db ] in
  let byte_marks = ref [ Sim_fs.bytes_written () ] in
  let op_marks = ref [ Sim_fs.ops_performed () ] in
  List.iter
    (fun s ->
      apply db s;
      dumps := dump db :: !dumps;
      byte_marks := Sim_fs.bytes_written () :: !byte_marks;
      op_marks := Sim_fs.ops_performed () :: !op_marks)
    steps;
  Db.close db;
  ( Array.of_list (List.rev !dumps),
    Array.of_list (List.rev !byte_marks),
    Array.of_list (List.rev !op_marks) )

(* Run [steps] in a fresh [dir] with a fault armed by [arm]; the power
   cut (if it fires) unwinds here as [Sim_fs.Crash].  Returns how many
   steps were acknowledged before the cut. *)
let run_faulted steps dir ~arm =
  Sim_fs.reset ();
  let session = ref None in
  let acked = ref 0 in
  (try
     arm ();
     let db, _ = Db.open_durable dir in
     session := Some db;
     List.iter
       (fun s ->
         apply db s;
         incr acked)
       steps
   with Sim_fs.Crash _ -> ());
  (* "reboot", then release the dead session's descriptors (close is the
     one operation the simulated crash still allows) *)
  Sim_fs.reset ();
  Option.iter Db.close !session;
  !acked

(* Recover [dir] and check the consistent-prefix property against the
   clean run's per-step dumps.  Returns the report for extra checks. *)
let recover_and_check ~what ~dumps ~acked dir =
  Sim_fs.reset ();
  let db, report = Db.open_durable dir in
  let got = dump db in
  Db.close db;
  let nsteps = Array.length dumps - 1 in
  let expected =
    if acked < nsteps then [ dumps.(acked); dumps.(acked + 1) ] else [ dumps.(acked) ]
  in
  if not (List.mem got expected) then
    Alcotest.failf
      "%s: recovered state is not a consistent prefix (%d/%d steps acked%s)\n\
       got:\n%s\nexpected one of:\n%s"
      what acked nsteps
      (match report.Db.note with Some n -> "; " ^ n | None -> "")
      got
      (String.concat "\n-- or --\n" expected);
  (got, report)

(* A fixed workload exercising DDL, inserts, updates, deletes, an index
   and a mid-stream checkpoint. *)
let base_workload =
  [
    Stmt "CREATE TABLE kv (k INT NOT NULL, v TEXT)";
    Stmt "INSERT INTO kv VALUES (1, 'one'), (2, 'two')";
    Stmt "INSERT INTO kv VALUES (3, NULL)";
    Checkpoint;
    Stmt "UPDATE kv SET v = 'deux' WHERE k = 2";
    Stmt "CREATE INDEX ON kv (k)";
    Stmt "INSERT INTO kv VALUES (4, 'four')";
    Stmt "DELETE FROM kv WHERE k = 1";
  ]

let with_clean_run f =
  let dir = tmpdir () in
  let marks = run_clean base_workload dir in
  rmrf dir;
  Fun.protect ~finally:Sim_fs.reset (fun () -> f marks)

let crash_at_bytes ~what ~dumps cut =
  let dir = tmpdir () in
  let acked =
    run_faulted base_workload dir ~arm:(fun () -> Sim_fs.crash_after_bytes cut)
  in
  let got, report = recover_and_check ~what ~dumps ~acked dir in
  rmrf dir;
  (acked, got, report)

let crash_at_ops ~what ~dumps cut =
  let dir = tmpdir () in
  let acked =
    run_faulted base_workload dir ~arm:(fun () -> Sim_fs.crash_after_ops cut)
  in
  let got, report = recover_and_check ~what ~dumps ~acked dir in
  rmrf dir;
  (acked, got, report)

(* --- The named matrix points -------------------------------------------- *)

let nsteps = List.length base_workload

(* Power cut 2 bytes short of the end: the final statement's commit
   record is torn, so recovery must land exactly on the state before
   it — the client never got an acknowledgement. *)
let test_short_write () =
  with_clean_run (fun (dumps, bytes, _) ->
      let total = bytes.(nsteps) in
      let acked, got, _ = crash_at_bytes ~what:"short write" ~dumps (total - 2) in
      Alcotest.(check int) "last step unacked" (nsteps - 1) acked;
      Alcotest.(check string) "exactly the prior state" dumps.(nsteps - 1) got)

(* Power cut with the statement frame fully on disk but the commit
   marker torn — the group-commit gap.  Replay must report the dropped
   statement and recovery must not apply it. *)
let test_crash_between_append_and_commit () =
  with_clean_run (fun (dumps, bytes, _) ->
      let sql = "DELETE FROM kv WHERE k = 1" in
      (* the last step's single commit write is [S frame][C frame]; cut
         two bytes into the C frame's header *)
      let s_frame = 8 + 1 + String.length sql in
      let cut = bytes.(nsteps - 1) + s_frame + 2 in
      let acked, got, report =
        crash_at_bytes ~what:"append/commit gap" ~dumps cut
      in
      Alcotest.(check int) "last step unacked" (nsteps - 1) acked;
      Alcotest.(check string) "statement dropped" dumps.(nsteps - 1) got;
      Alcotest.(check int) "reported dropped" 1 report.Db.dropped;
      Alcotest.(check bool) "reported torn" true report.Db.torn)

(* A torn WAL record strictly inside the payload (not at a frame
   boundary). *)
let test_torn_record () =
  with_clean_run (fun (dumps, bytes, _) ->
      (* 5 bytes into step 5's commit write: mid-payload of its S frame *)
      let cut = bytes.(4) + 5 in
      let acked, got, _ = crash_at_bytes ~what:"torn record" ~dumps cut in
      Alcotest.(check int) "acked" 4 acked;
      Alcotest.(check string) "prefix state" dumps.(4) got)

(* Power cut at every operation boundary inside the checkpoint: before
   the snapshot tmp writes, between them, before the WAL swap, before
   and after the CURRENT flip.  The checkpoint is atomic: recovery sees
   either the old generation (plus its WAL) or the new one — in both
   cases the same logical state. *)
let test_crash_mid_checkpoint () =
  with_clean_run (fun (dumps, _, ops) ->
      let cp = 3 in
      (* base_workload.(cp) is the Checkpoint *)
      for cut = ops.(cp) to ops.(cp + 1) - 1 do
        let what = Printf.sprintf "mid-checkpoint op %d" cut in
        let acked, got, _ = crash_at_ops ~what ~dumps cut in
        Alcotest.(check int) (what ^ ": acked") cp acked;
        Alcotest.(check string) (what ^ ": state unchanged") dumps.(cp) got
      done)

(* An fsync that reports failure without the machine dying: the
   statement surfaces an io error, the session stays usable, and the
   statement (whose frames did reach the file) survives recovery. *)
let test_fsync_failure () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let db, _ = Db.open_durable dir in
  ignore (Db.exec db "CREATE TABLE t (a INT NOT NULL)");
  ignore (Db.exec db "INSERT INTO t VALUES (1)");
  Sim_fs.fail_fsync true;
  (match Db.exec db "INSERT INTO t VALUES (2)" with
  | _ -> Alcotest.fail "expected an io error"
  | exception Db.Error m ->
      Alcotest.(check bool) "named io error" true (contains m "io error"));
  Sim_fs.fail_fsync false;
  ignore (Db.exec db "INSERT INTO t VALUES (3)");
  Alcotest.(check int) "session stays usable" 3
    (Table.row_count (Db.query db "SELECT a FROM t"));
  Db.close db;
  Sim_fs.reset ();
  let db2, _ = Db.open_durable dir in
  Alcotest.(check int) "all rows recovered" 3
    (Table.row_count (Db.query db2 "SELECT a FROM t"));
  Db.close db2;
  rmrf dir

(* The transactional analogue of the fsync-failure point: the fsync of
   an explicit COMMIT's frame group reports failure.  The client saw an
   error, so the transaction must be rolled back everywhere — not
   visible to further statements in the session, and *not* replayed at
   recovery even though the group (commit marker included) may already
   sit whole in the WAL file.  acked == recovered. *)
let test_txn_fsync_failure () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let root, _ = Db.open_durable dir in
  let store = Db.share root in
  let s = Db.session store in
  ignore (Db.exec s "CREATE TABLE t (a INT NOT NULL)");
  ignore (Db.exec s "INSERT INTO t VALUES (1)");
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO t VALUES (2)");
  Sim_fs.fail_fsync true;
  (match Db.exec s "COMMIT" with
  | _ -> Alcotest.fail "expected an io error"
  | exception Db.Error m ->
      Alcotest.(check bool) "named io error" true (contains m "io error"));
  Sim_fs.fail_fsync false;
  Alcotest.(check int) "failed commit invisible to the session" 1
    (Table.row_count (Db.query s "SELECT a FROM t"));
  ignore (Db.exec s "INSERT INTO t VALUES (3)");
  Alcotest.(check int) "session stays usable" 2
    (Table.row_count (Db.query s "SELECT a FROM t"));
  Db.close s;
  Db.close root;
  Sim_fs.reset ();
  let db2, _ = Db.open_durable dir in
  let got =
    Table.to_row_list (Db.query db2 "SELECT a FROM t")
    |> List.map (fun r -> Value.to_string r.(0))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "acked == recovered" [ "1"; "3" ] got;
  Db.close db2;
  rmrf dir

(* A merged install — a row-granular commit spliced onto a concurrently
   advanced version — is not reproducible by re-executing its SQL:
   replaying the UPDATE's predicate would also hit the row the
   concurrent INSERT appended, which the committed state left untouched.
   The WAL must log such commits as physical row images, and recovery
   must land on exactly the committed state. *)
let test_merged_commit_recovery () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let root, _ = Db.open_durable dir in
  let store = Db.share root in
  let s1 = Db.session store and s2 = Db.session store in
  ignore (Db.exec s1 "CREATE TABLE t (a INT NOT NULL, v INT NOT NULL)");
  ignore (Db.exec s1 "INSERT INTO t VALUES (1, 0)");
  (* Pin s2's snapshot before s1 appends, so s2's install merges onto a
     version that grew underneath it. *)
  ignore (Db.exec s2 "BEGIN");
  Alcotest.(check int) "s2 snapshot pinned" 1
    (Table.row_count (Db.query s2 "SELECT a FROM t"));
  ignore (Db.exec s1 "BEGIN");
  ignore (Db.exec s1 "INSERT INTO t VALUES (2, 0)");
  ignore (Db.exec s1 "COMMIT");
  (* Matches every v=0 row in s2's snapshot — but only row (1,0) is
     there; (2,0) must stay untouched by the merge AND by replay. *)
  ignore (Db.exec s2 "UPDATE t SET v = 1 WHERE v = 0");
  ignore (Db.exec s2 "COMMIT");
  let live db =
    Table.to_row_list (Db.query db "SELECT a, v FROM t")
    |> List.map (fun r -> Array.to_list (Array.map Value.to_string r))
    |> List.sort compare
  in
  let committed = live s1 in
  Alcotest.(check (list (list string)))
    "merge left the concurrent append alone"
    [ [ "1"; "1" ]; [ "2"; "0" ] ]
    committed;
  Db.close s1;
  Db.close s2;
  Db.close root;
  Sim_fs.reset ();
  let db2, _ = Db.open_durable dir in
  Alcotest.(check (list (list string))) "recovered == committed" committed
    (live db2);
  Db.close db2;
  rmrf dir

(* When a commit group's fsync fails AND the abort-frame revocation's
   fsync fails too, the store must poison itself: later durable commits
   keep failing (acknowledging one could order it after a phantom
   recovery of the errored group) until a sync carries the revocation to
   disk, after which commits — and recovery — behave normally. *)
let test_double_fsync_failure () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let root, _ = Db.open_durable dir in
  let store = Db.share root in
  let s = Db.session store in
  ignore (Db.exec s "CREATE TABLE t (a INT NOT NULL)");
  ignore (Db.exec s "INSERT INTO t VALUES (1)");
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO t VALUES (2)");
  Sim_fs.fail_fsync true;
  (match Db.exec s "COMMIT" with
  | _ -> Alcotest.fail "expected an io error"
  | exception Db.Error m ->
      Alcotest.(check bool) "named io error" true (contains m "io error"));
  (* fsync still failing: the revocation is not durable, so the store is
     poisoned and further durable commits must fail. *)
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO t VALUES (3)");
  (match Db.exec s "COMMIT" with
  | _ -> Alcotest.fail "expected the poisoned store to fail the commit"
  | exception Db.Error m ->
      Alcotest.(check bool) "commit refused by the poisoned store" true
        (contains m "poisoned"));
  Sim_fs.fail_fsync false;
  (* Healed: the first commit under a working fsync persists the
     revocation before acknowledging anything. *)
  ignore (Db.exec s "BEGIN");
  ignore (Db.exec s "INSERT INTO t VALUES (4)");
  ignore (Db.exec s "COMMIT");
  Db.close s;
  Db.close root;
  Sim_fs.reset ();
  let db2, _ = Db.open_durable dir in
  let got =
    Table.to_row_list (Db.query db2 "SELECT a FROM t")
    |> List.map (fun r -> Value.to_string r.(0))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "only acked commits recovered" [ "1"; "4" ] got;
  Db.close db2;
  rmrf dir

(* Recovery is idempotent: opening twice with no faults and no new
   writes yields the same state, and a run with no crash loses
   nothing. *)
let test_no_crash_and_reopen () =
  with_clean_run (fun (dumps, bytes, _) ->
      let acked, got, _ =
        crash_at_bytes ~what:"no crash" ~dumps (bytes.(nsteps) + 1_000_000)
      in
      Alcotest.(check int) "all acked" nsteps acked;
      Alcotest.(check string) "final state" dumps.(nsteps) got)

(* --- Sweeps: a power cut at (almost) every byte and every op ------------ *)

let sweep_points total target =
  let stride = max 1 (total / target) in
  let rec go acc cut = if cut >= total then acc else go (cut :: acc) (cut + stride) in
  go [ total - 1 ] 0 |> List.sort_uniq compare

let test_byte_sweep () =
  with_clean_run (fun (dumps, bytes, _) ->
      List.iter
        (fun cut ->
          ignore
            (crash_at_bytes ~what:(Printf.sprintf "byte sweep cut=%d" cut) ~dumps cut))
        (sweep_points bytes.(nsteps) 110))

let test_op_sweep () =
  with_clean_run (fun (dumps, _, ops) ->
      List.iter
        (fun cut ->
          ignore
            (crash_at_ops ~what:(Printf.sprintf "op sweep cut=%d" cut) ~dumps cut))
        (sweep_points ops.(nsteps) 90))

(* --- Concurrent transactions: interleaved sessions, crash sweep --------- *)

(* Two sessions on one shared durable store, their statements interleaved
   at statement granularity from a single thread — deterministic, so the
   clean run's byte marks locate crash points in the faulted run exactly
   as in the single-session matrix.  Each COMMIT writes its whole WAL
   frame group (begin / statements / commit marker) in one write, so a
   power cut anywhere must recover a prefix of the *committed
   transactions* in commit order: never a half-applied transaction,
   never a lost acknowledged commit. *)

type tstep = TA of string | TB of string | Tcp

let txn_workload =
  [
    TA "CREATE TABLE a (x INT NOT NULL)";
    TB "CREATE TABLE b (y INT NOT NULL)";
    TA "BEGIN";
    TA "INSERT INTO a VALUES (1)";
    TB "BEGIN";
    TB "INSERT INTO b VALUES (10)";
    TA "INSERT INTO a VALUES (2)";
    TA "COMMIT";
    TB "INSERT INTO b VALUES (11)";
    TB "COMMIT";
    TB "BEGIN";
    TB "UPDATE b SET y = y + 100";
    TB "ROLLBACK";
    Tcp;
    TA "BEGIN";
    TA "UPDATE a SET x = x * 10";
    TB "BEGIN";
    TB "DELETE FROM b WHERE y = 11";
    TA "COMMIT";
    TB "COMMIT";
    TA "INSERT INTO a VALUES (3)";
  ]

(* The committed state is what a brand-new session sees — the drivers'
   own views may sit inside an open transaction. *)
let observe store = dump (Db.session store)

let apply_tstep sa sb root = function
  | TA sql -> ignore (Db.exec sa sql)
  | TB sql -> ignore (Db.exec sb sql)
  | Tcp -> Db.checkpoint root

let run_txn_clean steps dir =
  Sim_fs.reset ();
  let root, _ = Db.open_durable dir in
  let store = Db.share root in
  let sa = Db.session store and sb = Db.session store in
  let dumps = ref [ observe store ] in
  let marks = ref [ Sim_fs.bytes_written () ] in
  List.iter
    (fun s ->
      apply_tstep sa sb root s;
      dumps := observe store :: !dumps;
      marks := Sim_fs.bytes_written () :: !marks)
    steps;
  Db.close sa;
  Db.close sb;
  Db.close root;
  (Array.of_list (List.rev !dumps), Array.of_list (List.rev !marks))

let crash_txn_at_bytes ~what ~dumps cut =
  let dir = tmpdir () in
  Sim_fs.reset ();
  let acked = ref 0 in
  let open_dbs = ref [] in
  (try
     Sim_fs.crash_after_bytes cut;
     let root, _ = Db.open_durable dir in
     let store = Db.share root in
     let sa = Db.session store and sb = Db.session store in
     open_dbs := [ sa; sb; root ];
     List.iter
       (fun s ->
         apply_tstep sa sb root s;
         incr acked)
       txn_workload
   with Sim_fs.Crash _ -> ());
  Sim_fs.reset ();
  List.iter Db.close !open_dbs;
  let got, report = recover_and_check ~what ~dumps ~acked:!acked dir in
  rmrf dir;
  (!acked, got, report)

let with_txn_clean_run f =
  let dir = tmpdir () in
  let marks = run_txn_clean txn_workload dir in
  rmrf dir;
  Fun.protect ~finally:Sim_fs.reset (fun () -> f marks)

(* A power cut a few bytes into the first COMMIT's frame group: the torn
   group must be dropped whole — both inserts of transaction A vanish
   even though its B-frame and first statement frame are on disk. *)
let test_torn_txn_group () =
  with_txn_clean_run (fun (dumps, marks) ->
      let commit_step = 7 in
      (* txn_workload.(commit_step) is TA "COMMIT" *)
      let cut = marks.(commit_step) + 3 in
      let acked, got, report =
        crash_txn_at_bytes ~what:"torn txn group" ~dumps cut
      in
      Alcotest.(check int) "crash lands on the COMMIT" commit_step acked;
      Alcotest.(check string)
        "whole transaction dropped" dumps.(commit_step) got;
      Alcotest.(check bool) "reported torn" true report.Db.torn)

(* The sweep: a power cut at ~80 byte positions across the interleaved
   run, including inside both overlapping commit groups, the rollback
   (which writes nothing), the shared-store checkpoint rotation and the
   trailing auto-commit. *)
let test_txn_interleaved_sweep () =
  with_txn_clean_run (fun (dumps, marks) ->
      let nsteps = List.length txn_workload in
      List.iter
        (fun cut ->
          ignore
            (crash_txn_at_bytes
               ~what:(Printf.sprintf "txn sweep cut=%d" cut)
               ~dumps cut))
        (sweep_points marks.(nsteps) 80))

(* --- Fuzz: random workload, random crash point -------------------------- *)

let fuzz_case_gen =
  QCheck2.Gen.(
    let word = string_size ~gen:(char_range 'a' 'z') (int_range 0 6) in
    let stmt =
      frequency
        [
          ( 5,
            map2
              (fun k s -> Stmt (Printf.sprintf "INSERT INTO kv VALUES (%d, '%s')" k s))
              (int_range 0 30) word );
          ( 2,
            map2
              (fun k s -> Stmt (Printf.sprintf "UPDATE kv SET v = '%s' WHERE k = %d" s k))
              (int_range 0 30) word );
          ( 2,
            map (fun k -> Stmt (Printf.sprintf "DELETE FROM kv WHERE k = %d" k))
              (int_range 0 30) );
          (1, pure Checkpoint);
        ]
    in
    let* body = list_size (int_range 1 10) stmt in
    let* frac = int_range 0 1000 in
    let* by_ops = bool in
    pure (Stmt "CREATE TABLE kv (k INT NOT NULL, v TEXT)" :: body, frac, by_ops))

let prop_random_crash_point =
  Tutil.qtest ~count:30 "random workload + random crash point recovers a prefix"
    fuzz_case_gen
    (fun (steps, frac, by_ops) ->
      let dir1 = tmpdir () in
      let dumps, bytes, ops = run_clean steps dir1 in
      rmrf dir1;
      let n = Array.length dumps - 1 in
      let dir2 = tmpdir () in
      let acked =
        run_faulted steps dir2 ~arm:(fun () ->
            if by_ops then Sim_fs.crash_after_ops (ops.(n) * frac / 1000)
            else Sim_fs.crash_after_bytes (bytes.(n) * frac / 1000))
      in
      let _ =
        recover_and_check
          ~what:(Printf.sprintf "fuzz (%s frac=%d)" (if by_ops then "ops" else "bytes") frac)
          ~dumps ~acked dir2
      in
      rmrf dir2;
      Sim_fs.reset ();
      true)

let () =
  Alcotest.run "recovery"
    [
      ( "matrix",
        [
          Alcotest.test_case "short write" `Quick test_short_write;
          Alcotest.test_case "append/commit gap" `Quick
            test_crash_between_append_and_commit;
          Alcotest.test_case "torn record" `Quick test_torn_record;
          Alcotest.test_case "mid-checkpoint" `Quick test_crash_mid_checkpoint;
          Alcotest.test_case "fsync failure" `Quick test_fsync_failure;
          Alcotest.test_case "fsync failure (txn ack)" `Quick
            test_txn_fsync_failure;
          Alcotest.test_case "merged commit replayed as row images" `Quick
            test_merged_commit_recovery;
          Alcotest.test_case "double fsync failure poisons the store" `Quick
            test_double_fsync_failure;
          Alcotest.test_case "no crash / reopen" `Quick test_no_crash_and_reopen;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "every ~1% of bytes" `Quick test_byte_sweep;
          Alcotest.test_case "every ~1% of ops" `Quick test_op_sweep;
        ] );
      ( "interleaved txns",
        [
          Alcotest.test_case "torn txn group dropped whole" `Quick
            test_torn_txn_group;
          Alcotest.test_case "crash sweep over two sessions" `Quick
            test_txn_interleaved_sweep;
        ] );
      ("fuzz", [ prop_random_crash_point ]);
    ]
