(* The TCP server and its wire protocol.

   Codec round-trips, framing fuzz (truncated / torn / garbage byte
   streams must yield clean protocol errors or closed connections, never
   a crash or hang), a differential test with 8 concurrent sessions
   (mixed readers and writers: every read sees a consistent committed
   snapshot, write-write conflicts abort exactly one loser), and the
   crash lever: [Server.kill] mid-workload, then [Db.open_durable]
   recovery where every acknowledged commit survives atomically. *)

module Db = Quill.Db
module Wire = Quill_server.Wire
module Server = Quill_server.Server
module Client = Quill_server.Client
module Value = Quill_storage.Value
module Table = Quill_storage.Table
module Sim_fs = Quill_storage.Sim_fs

let tmpdir () =
  let p = Filename.temp_file "quill_srv" "" in
  Sys.remove p;
  p

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else Sys.remove path

let run db sql = ignore (Db.exec db sql)

(* A server on an ephemeral port over a fresh in-memory store. *)
let with_server ?config setup f =
  let root = Db.create () in
  setup root;
  let srv = Server.start ?config (Db.share root) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f (Server.port srv))

let expect_affected = function
  | Wire.Affected _ -> ()
  | Wire.Err (_, m) -> Alcotest.failf "unexpected error response: %s" m
  | _ -> Alcotest.fail "expected an Affected response"

let one_int = function
  | Wire.Result (_, [ [| Value.Int n |] ]) -> n
  | Wire.Err (_, m) -> Alcotest.failf "unexpected error response: %s" m
  | _ -> Alcotest.fail "expected a one-int result"

(* --- codec -------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let reqs =
    [
      Wire.Query "SELECT * FROM t WHERE a = 'x''y'";
      Wire.Query "";
      Wire.Prepare "SELECT * FROM t WHERE a = $1";
      Wire.Execute
        ( 42,
          [|
            Value.Null; Value.Int (-7); Value.Float 1.5; Value.Bool true;
            Value.Str "hi\x00bin"; Value.Date 20000;
          |] );
      Wire.Cancel;
      Wire.Quit;
    ]
  in
  List.iter
    (fun req ->
      Alcotest.(check bool)
        "request round-trips" true
        (Wire.decode_request (Wire.encode_request req) = req))
    reqs;
  let resps =
    [
      Wire.Result
        ( [ ("a", Value.Int_t); ("b", Value.Str_t); ("c", Value.Float_t) ],
          [
            [| Value.Int 1; Value.Str "x"; Value.Float 0.25 |];
            [| Value.Null; Value.Str ""; Value.Float (-1e30) |];
          ] );
      Wire.Result ([], []);
      Wire.Affected 0;
      Wire.Affected max_int;
      Wire.Text "plan:\n  scan t";
      Wire.Prepared 7;
      Wire.Err (Wire.Conflict_err, "write-write conflict on t");
      Wire.Err (Wire.Protocol_err, "");
    ]
  in
  List.iter
    (fun resp ->
      Alcotest.(check bool)
        "response round-trips" true
        (Wire.decode_response (Wire.encode_response resp) = resp))
    resps

(* --- framing fuzz (pure codec) ------------------------------------------ *)

(* Any byte string either decodes or raises Protocol_error — nothing
   else, ever.  This is the no-crash guarantee for garbage frames. *)
let decodes_cleanly decode s =
  match decode s with
  | _ -> true
  | exception Wire.Protocol_error _ -> true
  | exception e ->
      QCheck2.Test.fail_reportf "decoder leaked %s on %S" (Printexc.to_string e)
        s

let gen_bytes = QCheck2.Gen.(string_size ~gen:char (int_range 0 64))

let prop_garbage_requests =
  Tutil.qtest ~count:500 "fuzz: garbage request frames decode cleanly"
    gen_bytes
    (decodes_cleanly Wire.decode_request)

let prop_garbage_responses =
  Tutil.qtest ~count:500 "fuzz: garbage response frames decode cleanly"
    gen_bytes
    (decodes_cleanly Wire.decode_response)

(* Torn frames: every strict prefix of a valid response is rejected with
   Protocol_error (responses have no variable-tail message, so a
   truncation is always detectable). *)
let gen_response =
  QCheck2.Gen.(
    let value =
      oneof
        [
          pure Value.Null;
          map (fun i -> Value.Int i) int;
          map (fun b -> Value.Bool b) bool;
          map (fun s -> Value.Str s) (string_size (int_range 0 8));
        ]
    in
    let col = pair (string_size (int_range 0 6)) (oneofl Value.[ Int_t; Str_t; Bool_t ]) in
    oneof
      [
        (let* ncols = int_range 0 3 in
         let* cols = list_repeat ncols col in
         let* nrows = int_range 0 3 in
         let* rows = list_repeat nrows (array_repeat ncols value) in
         pure (Wire.Result (cols, rows)));
        map (fun n -> Wire.Affected n) int;
        map (fun s -> Wire.Text s) (string_size (int_range 0 12));
        map (fun id -> Wire.Prepared id) (int_range 0 10000);
        map
          (fun (k, m) -> Wire.Err (k, m))
          (pair
             (oneofl Wire.[ Generic; Conflict_err; Aborted_err; Protocol_err ])
             (string_size (int_range 0 12)));
      ])

let prop_torn_responses =
  Tutil.qtest ~count:300 "fuzz: torn response frames are rejected" gen_response
    (fun resp ->
      let s = Wire.encode_response resp in
      let ok = ref true in
      for cut = 0 to String.length s - 1 do
        match Wire.decode_response (String.sub s 0 cut) with
        | _ -> ok := false
        | exception Wire.Protocol_error _ -> ()
        | exception _ -> ok := false
      done;
      if not !ok then
        QCheck2.Test.fail_reportf "a torn prefix of %S decoded or crashed" s
      else true)

(* --- framing fuzz (live sockets) ---------------------------------------- *)

let raw_connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let sent = ref 0 in
  while !sent < Bytes.length b do
    sent := !sent + Unix.write fd b !sent (Bytes.length b - !sent)
  done

(* Drain until the peer closes; returns the protocol-error responses seen.
   A clean close (End_of_file) and a reset (ECONNRESET/EPIPE) both count
   as the server dropping us, which is the contract for garbage. *)
let drain_till_close fd =
  let errs = ref [] in
  (try
     let rec loop () =
       (match Wire.decode_response (Wire.read_frame fd) with
       | Wire.Err (k, _) -> errs := k :: !errs
       | _ -> ());
       loop ()
     in
     loop ()
   with
  | End_of_file | Wire.Protocol_error _ -> ()
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  Unix.close fd;
  !errs

let u32le n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.to_string b

let test_socket_garbage () =
  with_server
    (fun root -> run root "CREATE TABLE t (a INT NOT NULL)")
    (fun port ->
      (* Unknown request type: server reports a protocol error, then
         drops the connection (the stream offset is untrustworthy). *)
      let fd = raw_connect port in
      write_all fd (u32le 5 ^ "ZZZZZ");
      let errs = drain_till_close fd in
      Alcotest.(check bool)
        "unknown type reported as protocol error" true
        (List.mem Wire.Protocol_err errs);
      (* Zero-length frame. *)
      let fd = raw_connect port in
      write_all fd (u32le 0);
      ignore (drain_till_close fd);
      (* Absurd length prefix: must be refused without buffering 2GB. *)
      let fd = raw_connect port in
      write_all fd (u32le 0x7FFFFFFF ^ "whatever");
      ignore (drain_till_close fd);
      (* Torn frame: claim 100 bytes, send 10, close.  The server just
         sees EOF mid-frame and drops the session. *)
      let fd = raw_connect port in
      write_all fd (u32le 100 ^ "only ten b");
      Unix.close fd;
      (* Raw non-frame garbage. *)
      let fd = raw_connect port in
      write_all fd "\xff\xfe\xfd\xfc not a frame at all \x00\x01";
      ignore (drain_till_close fd);
      (* After all that abuse a well-formed client still gets served. *)
      let c = Client.connect ~port () in
      expect_affected (Client.query c "INSERT INTO t VALUES (1)");
      Alcotest.(check int)
        "server survived the fuzz" 1
        (one_int (Client.query c "SELECT COUNT(*) FROM t"));
      Client.close c)

(* --- sessions: prepare/execute, txn control, conflicts ------------------ *)

let test_prepare_execute () =
  with_server
    (fun root ->
      run root "CREATE TABLE t (a INT NOT NULL, s TEXT)";
      run root "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
    (fun port ->
      let c = Client.connect ~port () in
      (match Client.prepare c "SELECT s FROM t WHERE a = $1" with
      | Error m -> Alcotest.failf "prepare failed: %s" m
      | Ok id -> (
          match Client.execute c id [| Value.Int 2 |] with
          | Wire.Result (_, [ [| Value.Str "two" |] ]) -> ()
          | _ -> Alcotest.fail "parameterized execute returned wrong rows"));
      (match Client.execute c 9999 [||] with
      | Wire.Err (Wire.Generic, _) -> ()
      | _ -> Alcotest.fail "unknown statement id must error");
      Client.close c)

let test_conflict_exactly_one_loser () =
  with_server
    (fun root ->
      run root "CREATE TABLE t (a INT NOT NULL)";
      run root "INSERT INTO t VALUES (0)")
    (fun port ->
      let c1 = Client.connect ~port () in
      let c2 = Client.connect ~port () in
      expect_affected (Client.query c1 "BEGIN");
      expect_affected (Client.query c2 "BEGIN");
      expect_affected (Client.query c1 "UPDATE t SET a = 1");
      expect_affected (Client.query c2 "UPDATE t SET a = 2");
      let r1 = Client.query c1 "COMMIT" in
      let r2 = Client.query c2 "COMMIT" in
      let losers =
        List.filter
          (function Wire.Err (Wire.Conflict_err, _) -> true | _ -> false)
          [ r1; r2 ]
      in
      Alcotest.(check int) "exactly one loser" 1 (List.length losers);
      expect_affected r1;
      let c3 = Client.connect ~port () in
      Alcotest.(check int)
        "winner's value committed" 1
        (one_int (Client.query c3 "SELECT MAX(a) FROM t"));
      Client.close c1; Client.close c2; Client.close c3)

(* Row-granular conflict detection over TCP: sessions updating disjoint
   chunk-aligned row ranges of one hot table all commit (zero
   conflicts), while overlapping ranges keep exactly one loser (covered
   above — both whole-table UPDATEs of [test_conflict_exactly_one_loser]
   share every chunk). *)
let test_tcp_disjoint_writers () =
  let writers = 4 in
  let old = !Table.default_chunk_rows in
  Table.default_chunk_rows := 16;
  Fun.protect ~finally:(fun () -> Table.default_chunk_rows := old) (fun () ->
      with_server
        (fun root ->
          run root "CREATE TABLE hot (id INT NOT NULL, v INT NOT NULL)";
          let b = Buffer.create 1024 in
          for i = 0 to (writers * 16) - 1 do
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_string b (Printf.sprintf "(%d, 0)" i)
          done;
          run root ("INSERT INTO hot VALUES " ^ Buffer.contents b))
        (fun port ->
          let cs = List.init writers (fun _ -> Client.connect ~port ()) in
          List.iter (fun c -> expect_affected (Client.query c "BEGIN")) cs;
          List.iteri
            (fun w c ->
              expect_affected
                (Client.query c
                   (Printf.sprintf
                      "UPDATE hot SET v = v + 1 WHERE id >= %d AND id < %d"
                      (w * 16)
                      ((w + 1) * 16))))
            cs;
          List.iteri
            (fun w c ->
              match Client.query c "COMMIT" with
              | Wire.Affected _ -> ()
              | Wire.Err (_, m) ->
                  Alcotest.failf "disjoint TCP writer %d conflicted: %s" w m
              | _ -> Alcotest.fail "unexpected response to COMMIT")
            cs;
          let c = Client.connect ~port () in
          Alcotest.(check int)
            "every range's update survived" (writers * 16)
            (one_int (Client.query c "SELECT SUM(v) FROM hot"));
          Client.close c;
          List.iter Client.close cs))

(* Disconnecting mid-transaction must roll the transaction back, not
   leave the table pinned against future writers. *)
let test_disconnect_rolls_back () =
  with_server
    (fun root ->
      run root "CREATE TABLE t (a INT NOT NULL)";
      run root "INSERT INTO t VALUES (0)")
    (fun port ->
      let c1 = Client.connect ~port () in
      expect_affected (Client.query c1 "BEGIN");
      expect_affected (Client.query c1 "UPDATE t SET a = 99");
      Client.close c1;
      let c2 = Client.connect ~port () in
      let rec wait_clean tries =
        if tries = 0 then Alcotest.fail "dropped txn never rolled back";
        if one_int (Client.query c2 "SELECT MAX(a) FROM t") <> 0 then
          Alcotest.fail "dropped txn leaked its writes";
        expect_affected (Client.query c2 "BEGIN");
        expect_affected (Client.query c2 "UPDATE t SET a = 7");
        match Client.query c2 "COMMIT" with
        | Wire.Affected _ -> ()
        | Wire.Err (Wire.Conflict_err, _) ->
            (* The server may still be unwinding c1's session. *)
            Thread.delay 0.02;
            wait_clean (tries - 1)
        | _ -> Alcotest.fail "unexpected response to COMMIT"
      in
      wait_clean 100;
      Alcotest.(check int)
        "writer proceeded after disconnect" 7
        (one_int (Client.query c2 "SELECT MAX(a) FROM t"));
      Client.close c2)

(* --- the differential test: 8 concurrent sessions ----------------------- *)

(* 5 readers scan SUM(bal) — which transfers preserve — while 3 writers
   move money with explicit transactions, retrying on conflicts.  Every
   read must see exactly the invariant total (consistent committed
   snapshot, no torn reads); every writer must get all its transfers
   through (conflict aborts are retried, so losers make progress). *)
let test_differential_8_sessions () =
  let accounts = 16 and initial = 100 in
  let expected = accounts * initial in
  let writers = 3 and readers = 5 in
  let txns_per_writer = 10 and reads_per_reader = 40 in
  with_server
    (fun root ->
      run root "CREATE TABLE acct (id INT NOT NULL, bal INT NOT NULL)";
      let values =
        String.concat ", "
          (List.init accounts (fun i -> Printf.sprintf "(%d, %d)" i initial))
      in
      run root (Printf.sprintf "INSERT INTO acct VALUES %s" values))
    (fun port ->
      let torn = Atomic.make 0 in
      let commits = Atomic.make 0 in
      let conflicts = Atomic.make 0 in
      let failures = Atomic.make 0 in
      let writer w =
        let c = Client.connect ~port () in
        let transfer i =
          let a = (w + i) mod (accounts - 1) in
          let rec attempt tries =
            if tries > 200 then Atomic.incr failures
            else
              let aborted = ref false in
              let step sql =
                if not !aborted then
                  match Client.query c sql with
                  | Wire.Affected _ -> ()
                  | Wire.Err (Wire.Conflict_err, _) ->
                      Atomic.incr conflicts;
                      aborted := true
                  | Wire.Err (_, m) ->
                      Printf.eprintf "writer %d: %s\n%!" w m;
                      Atomic.incr failures;
                      aborted := true
                  | _ -> Atomic.incr failures
              in
              step "BEGIN";
              step
                (Printf.sprintf
                   "UPDATE acct SET bal = bal + CASE WHEN id = %d THEN -1 ELSE \
                    1 END WHERE id = %d OR id = %d"
                   a a (a + 1));
              step "COMMIT";
              if !aborted then attempt (tries + 1) else Atomic.incr commits
          in
          attempt 0
        in
        for i = 1 to txns_per_writer do
          transfer i
        done;
        Client.close c
      in
      let reader _ =
        let c = Client.connect ~port () in
        for _ = 1 to reads_per_reader do
          if one_int (Client.query c "SELECT SUM(bal) FROM acct") <> expected
          then Atomic.incr torn
        done;
        Client.close c
      in
      let threads =
        List.init writers (fun w -> Thread.create writer w)
        @ List.init readers (fun r -> Thread.create reader r)
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "no failed statements" 0 (Atomic.get failures);
      Alcotest.(check int) "no torn reads" 0 (Atomic.get torn);
      Alcotest.(check int)
        "every transfer committed" (writers * txns_per_writer)
        (Atomic.get commits);
      (* The final state reflects all transfers: SUM unchanged. *)
      let c = Client.connect ~port () in
      Alcotest.(check int)
        "final sum preserved" expected
        (one_int (Client.query c "SELECT SUM(bal) FROM acct"));
      Client.close c)

(* --- kill mid-workload, then recover ------------------------------------ *)

(* Writers stream two-insert transactions over TCP while the server is
   [kill]ed out from under them.  Recovery via [Db.open_durable] must
   show: every acknowledged commit present (the WAL fsyncs before the
   ack), nothing beyond what was attempted, and each recovered
   transaction whole (both halves or neither — no torn transactions). *)
let test_kill_recovers_acked_commits () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let root, _ = Db.open_durable dir in
  run root "CREATE TABLE log (wid INT NOT NULL, seq INT NOT NULL, half INT NOT NULL)";
  let store = Db.share root in
  let srv = Server.start ~config:{ Server.default_config with port = 0 } store in
  let port = Server.port srv in
  let writers = 3 in
  let acked = Array.make writers [] in
  let attempted = Array.make writers 0 in
  let total_acked = Atomic.make 0 in
  let writer w =
    match Client.connect ~port () with
    | exception _ -> ()
    | c -> (
        try
          let i = ref 0 in
          while true do
            incr i;
            attempted.(w) <- !i;
            let step sql =
              match Client.query c sql with
              | Wire.Affected _ -> true
              | Wire.Err (Wire.Conflict_err, _) -> false
              | Wire.Err (_, m) -> Alcotest.failf "writer %d: %s" w m
              | _ -> false
            in
            let ok =
              step "BEGIN"
              && step
                   (Printf.sprintf "INSERT INTO log VALUES (%d, %d, 1)" w !i)
              && step
                   (Printf.sprintf "INSERT INTO log VALUES (%d, %d, 2)" w !i)
              && step "COMMIT"
            in
            if ok then begin
              acked.(w) <- !i :: acked.(w);
              Atomic.incr total_acked
            end
          done
        with _ -> (try Unix.close c.Client.fd with _ -> ()))
  in
  let threads = List.init writers (fun w -> Thread.create writer w) in
  (* Let the workload build up some acked commits, then pull the plug. *)
  let rec wait_for n tries =
    if tries = 0 then Alcotest.fail "workload never made progress";
    if Atomic.get total_acked < n then begin
      Thread.delay 0.01;
      wait_for n (tries - 1)
    end
  in
  wait_for 10 1000;
  Server.kill srv;
  List.iter Thread.join threads;
  (* Give any commit that was mid-flight at the kill a moment to land —
     its client never saw the ack, but it may legitimately be durable. *)
  Thread.delay 0.2;
  let db2, report = Db.open_durable dir in
  Alcotest.(check bool) "log replayed without a torn tail" false
    report.Db.torn;
  let rows = Db.query db2 "SELECT wid, seq, half FROM log" in
  let seen = Hashtbl.create 64 in
  for i = 0 to Table.row_count rows - 1 do
    let geti j =
      match Table.get rows i j with
      | Value.Int n -> n
      | v -> Alcotest.failf "non-int in log: %s" (Value.to_string v)
    in
    let key = (geti 0, geti 1, geti 2) in
    if Hashtbl.mem seen key then
      Alcotest.failf "duplicate row (%d,%d,%d) after recovery" (geti 0)
        (geti 1) (geti 2);
    Hashtbl.replace seen key ()
  done;
  for w = 0 to writers - 1 do
    (* acked ⊆ recovered: an acknowledged commit can never be lost. *)
    List.iter
      (fun i ->
        if not (Hashtbl.mem seen (w, i, 1) && Hashtbl.mem seen (w, i, 2)) then
          Alcotest.failf "acked txn (writer %d, seq %d) lost by recovery" w i)
      acked.(w);
    (* recovered ⊆ attempted, and atomic: both halves or neither. *)
    Hashtbl.iter
      (fun (w', i, half) () ->
        if w' = w then begin
          if i < 1 || i > attempted.(w) then
            Alcotest.failf "recovered txn (writer %d, seq %d) was never sent" w
              i;
          let other = if half = 1 then 2 else 1 in
          if not (Hashtbl.mem seen (w, i, other)) then
            Alcotest.failf "torn txn after recovery: (writer %d, seq %d)" w i
        end)
      seen
  done;
  Alcotest.(check bool)
    "recovery kept at least the acked workload" true
    (Hashtbl.length seen >= 2 * Atomic.get total_acked);
  rmrf dir

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
          prop_garbage_requests;
          prop_garbage_responses;
          prop_torn_responses;
        ] );
      ( "framing fuzz",
        [ Alcotest.test_case "live socket garbage" `Quick test_socket_garbage ] );
      ( "sessions",
        [
          Alcotest.test_case "prepare/execute" `Quick test_prepare_execute;
          Alcotest.test_case "conflict: exactly one loser" `Quick
            test_conflict_exactly_one_loser;
          Alcotest.test_case "disjoint writers commit over TCP" `Quick
            test_tcp_disjoint_writers;
          Alcotest.test_case "disconnect rolls back" `Quick
            test_disconnect_rolls_back;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "8-session differential" `Quick
            test_differential_8_sessions;
          Alcotest.test_case "kill recovers acked commits" `Quick
            test_kill_recovers_acked_commits;
        ] );
    ]
