(* Out-of-core execution: the spill-file manager (codec round-trips,
   CRC-checked frames, session accounting, orphan pruning), graceful
   degradation of over-budget joins/aggregations/sorts in every engine,
   the [Db.set_spill] ablation lever that restores the hard budget kill,
   rich abort diagnostics on both the library and the TCP plane, and
   fault injection: torn spill files, fsync failures and mid-spill
   crashes must yield correct results or clean errors — never wrong
   rows — and never leave stray spill files behind after recovery. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Spill = Quill_storage.Spill
module Sim_fs = Quill_storage.Sim_fs
module Metrics = Quill_obs.Metrics
module Wire = Quill_server.Wire
module Server = Quill_server.Server
module Client = Quill_server.Client
module Db = Quill.Db

let m_bytes = Metrics.counter "quill.spill.bytes"
let m_spills = Metrics.counter "quill.governor.spills"

let engines = [ Db.Volcano; Db.Vectorized; Db.Compiled ]

let tmpdir () =
  let p = Filename.temp_file "quill_spill" "" in
  Sys.remove p;
  p

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else Sys.remove path

(* t(k, v) with one group per row: over-budget by construction for any
   small budget, and every answer is checkable against the ungoverned
   run. *)
let grouped_db rows =
  let db = Db.create () in
  let t =
    Table.create ~name:"g"
      (Schema.create
         [ Schema.col ~nullable:false "k" Value.Int_t;
           Schema.col ~nullable:false "v" Value.Int_t ])
  in
  for i = 0 to rows - 1 do
    Table.insert t [| Value.Int i; Value.Int (i mod 7) |]
  done;
  Catalog.add (Db.catalog db) t;
  db

(* --- Codec -------------------------------------------------------------- *)

(* Every value shape through a run file and back, byte-for-byte.  The
   float cases straddle the 2^62 bit boundary on purpose: the sign and
   top exponent bits of the IEEE image must survive (a 63-bit int
   round-trip loses them). *)
let test_codec_roundtrip () =
  let root = tmpdir () in
  let sess = Spill.fresh_session root in
  let rows =
    [|
      [| Value.Int 0; Value.Float 2.4; Value.Str "alpha"; Value.Bool true |];
      [| Value.Null; Value.Float (-3.75); Value.Str ""; Value.Date 9125 |];
      [| Value.Int min_int; Value.Float 1e300; Value.Str "bin\x00\xffdata" |];
      [| Value.Int max_int; Value.Float (-0.5); Value.Bool false |];
      [| Value.Float infinity; Value.Float neg_infinity; Value.Float 1.5e-300 |];
      [| Value.Str (String.make 100_000 'x') |];
    |]
  in
  Fun.protect
    ~finally:(fun () ->
      Spill.cleanup sess;
      rmrf root)
    (fun () ->
      let w = Spill.start_run sess in
      Array.iter (fun r -> Spill.add_row w r) rows;
      let run = Spill.finish_run w in
      Alcotest.(check int) "row count" (Array.length rows) (Spill.run_rows run);
      Alcotest.(check bool) "bytes accounted" true (Spill.run_bytes run > 100_000);
      Alcotest.(check int) "session bytes" (Spill.run_bytes run)
        (Spill.bytes_spilled sess);
      Alcotest.(check int) "session runs" 1 (Spill.runs_written sess);
      let got = ref [] in
      Spill.iter_run run (fun r -> got := r :: !got);
      let got = Array.of_list (List.rev !got) in
      Alcotest.(check int) "rows back" (Array.length rows) (Array.length got);
      Array.iteri
        (fun i expect ->
          Array.iteri
            (fun j v ->
              if compare v got.(i).(j) <> 0 then
                Alcotest.failf "row %d col %d: wrote %s, read %s" i j
                  (Value.to_string v)
                  (Value.to_string got.(i).(j)))
            expect)
        rows)

(* A flipped byte anywhere in the payload must surface as a checksum
   error, never as silently different rows. *)
let test_codec_detects_corruption () =
  let root = tmpdir () in
  let sess = Spill.fresh_session root in
  Fun.protect
    ~finally:(fun () ->
      Spill.cleanup sess;
      rmrf root)
    (fun () ->
      let w = Spill.start_run sess in
      for i = 0 to 999 do
        Spill.add_row w [| Value.Int i; Value.Str (Printf.sprintf "row-%d" i) |]
      done;
      let run = Spill.finish_run w in
      (* Corrupt one byte in the middle of the file (inside a frame
         payload, past the header). *)
      let path = Filename.concat (Spill.dir sess) "run-0.spl" in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      let off = Spill.run_bytes run / 2 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      match Spill.iter_run run (fun _ -> ()) with
      | () -> Alcotest.fail "corrupt run read back without an error"
      | exception Spill.Error _ -> ())

(* A truncated run (torn final frame) is a clean error too. *)
let test_codec_detects_truncation () =
  let root = tmpdir () in
  let sess = Spill.fresh_session root in
  Fun.protect
    ~finally:(fun () ->
      Spill.cleanup sess;
      rmrf root)
    (fun () ->
      let w = Spill.start_run sess in
      for i = 0 to 999 do
        Spill.add_row w [| Value.Int i |]
      done;
      let run = Spill.finish_run w in
      let path = Filename.concat (Spill.dir sess) "run-0.spl" in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      ignore (Unix.ftruncate fd (Spill.run_bytes run - 5));
      Unix.close fd;
      match Spill.iter_run run (fun _ -> ()) with
      | () -> Alcotest.fail "torn run read back without an error"
      | exception Spill.Error _ -> ())

(* --- Graceful degradation in every engine ------------------------------- *)

(* Join, aggregation and sort, each far over a 1 MiB budget, must
   complete in all three engines (serial and morsel-parallel) with
   exactly the ungoverned answer, and the spill/ governor metrics must
   account for the traffic. *)
let test_over_budget_completes_everywhere () =
  let db = grouped_db 100_000 in
  let queries =
    [ ("agg", "SELECT k, count(*) FROM g GROUP BY k");
      ("join", "SELECT count(*) FROM g g1, g g2 WHERE g1.k = g2.k");
      ("sort", "SELECT k, v FROM g ORDER BY v, k") ]
  in
  Fun.protect
    ~finally:(fun () -> Db.set_parallelism db 1)
    (fun () ->
      List.iter
        (fun (name, sql) ->
          let reference = Tutil.table_rows (Db.query db sql) in
          List.iter
            (fun engine ->
              List.iter
                (fun par ->
                  Db.set_parallelism db par;
                  let label =
                    Printf.sprintf "%s/%s/par %d" name (Db.engine_name engine) par
                  in
                  let bytes0 = Metrics.value m_bytes in
                  let spills0 = Metrics.value m_spills in
                  let got =
                    Tutil.table_rows
                      (Db.query db ~engine ~budget_bytes:(1024 * 1024) sql)
                  in
                  Tutil.check_same_unordered label reference got;
                  Alcotest.(check bool) (label ^ ": spill bytes counted") true
                    (Metrics.value m_bytes > bytes0);
                  Alcotest.(check bool) (label ^ ": governor spills counted") true
                    (Metrics.value m_spills > spills0))
                [ 1; 4 ])
            engines)
        queries)

(* --- The ablation lever and abort diagnostics --------------------------- *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_spill_off_restores_hard_kill () =
  let db = grouped_db 100_000 in
  Db.set_spill db false;
  Alcotest.(check bool) "lever readable" false (Db.spill_enabled db);
  (match Db.query db ~budget_bytes:(1024 * 1024) "SELECT k, count(*) FROM g GROUP BY k" with
  | _ -> Alcotest.fail "spill off: over-budget query did not abort"
  | exception Db.Aborted Db.Resource_exhausted -> ());
  (* The diagnostic names the reason, the numbers and the lever. *)
  (match Db.last_abort_detail db with
  | None -> Alcotest.fail "no abort detail recorded"
  | Some d ->
      List.iter
        (fun needle ->
          if not (contains_sub d needle) then
            Alcotest.failf "abort detail %S is missing %S" d needle)
        [ "resource exhausted"; "budget 1048576 bytes"; "spilling disabled" ]);
  Db.set_spill db true;
  let r = Db.query db ~budget_bytes:(1024 * 1024) "SELECT k, count(*) FROM g GROUP BY k" in
  Alcotest.(check int) "lever back on: completes" 100_000 (Table.row_count r)

(* DISTINCT dedup state is documented unspillable: over budget it still
   kills cleanly — and the diagnostic reports what spilling managed
   before the refusal. *)
let test_unspillable_distinct_aborts_with_detail () =
  let db = grouped_db 100_000 in
  let sql = "SELECT DISTINCT k, v FROM g" in
  Alcotest.(check int) "ungoverned completes" 100_000
    (Table.row_count (Db.query db sql));
  (match Db.query db ~budget_bytes:(64 * 1024) sql with
  | _ -> Alcotest.fail "over-budget DISTINCT did not abort"
  | exception Db.Aborted Db.Resource_exhausted -> ());
  match Db.last_abort_detail db with
  | None -> Alcotest.fail "no abort detail recorded"
  | Some d ->
      List.iter
        (fun needle ->
          if not (contains_sub d needle) then
            Alcotest.failf "abort detail %S is missing %S" d needle)
        [ "resource exhausted"; "peak "; "budget 65536 bytes"; "spilled " ]

(* The TCP plane: a session budget that spilling cannot satisfy comes
   back as a clean [Aborted_err] frame carrying the same rich detail,
   and a budget that spilling can satisfy returns the full result. *)
let test_tcp_abort_frames_carry_detail () =
  let root = grouped_db 100_000 in
  let srv =
    Server.start
      ~config:{ Server.default_config with Server.session_budget_bytes = Some (1024 * 1024) }
      (Db.share root)
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = Client.connect ~port:(Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* Spilling satisfies this one: graceful degradation over TCP. *)
          (match Client.query c "SELECT k, count(*) FROM g GROUP BY k" with
          | Wire.Result (_, rows) ->
              Alcotest.(check int) "spilled result over TCP" 100_000 (List.length rows)
          | Wire.Err (_, m) -> Alcotest.failf "spillable query errored: %s" m
          | _ -> Alcotest.fail "expected a Result frame");
          (* Unspillable DISTINCT state cannot be saved: clean error
             frame with the governor's account. *)
          match Client.query c "SELECT DISTINCT k, v FROM g" with
          | Wire.Err (Wire.Aborted_err, detail) ->
              List.iter
                (fun needle ->
                  if not (contains_sub detail needle) then
                    Alcotest.failf "TCP abort detail %S is missing %S" detail needle)
                [ "resource exhausted"; "budget 1048576 bytes" ]
          | Wire.Err (k, m) ->
              Alcotest.failf "wrong error kind for budget abort: %s"
                (match k with
                | Wire.Generic -> "generic: " ^ m
                | Wire.Conflict_err -> "conflict: " ^ m
                | Wire.Protocol_err -> "protocol: " ^ m
                | Wire.Aborted_err -> assert false)
          | _ -> Alcotest.fail "expected an error frame"))

(* --- Orphan hygiene ------------------------------------------------------ *)

(* A successful spilled query on a durable store leaves nothing behind;
   a crash mid-spill leaves strays that the next [open_durable] prunes. *)
let test_no_strays_after_success () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () ->
      Sim_fs.reset ();
      rmrf dir)
    (fun () ->
      let db, _ = Db.open_durable dir in
      let t =
        Table.create ~name:"g"
          (Schema.create
             [ Schema.col ~nullable:false "k" Value.Int_t;
               Schema.col ~nullable:false "v" Value.Int_t ])
      in
      for i = 0 to 49_999 do
        Table.insert t [| Value.Int i; Value.Int (i mod 7) |]
      done;
      Catalog.add (Db.catalog db) t;
      let r = Db.query db ~budget_bytes:(512 * 1024) "SELECT k, count(*) FROM g GROUP BY k" in
      Alcotest.(check int) "spilled query answers" 50_000 (Table.row_count r);
      Alcotest.(check bool) "no spill dir left behind" false
        (Sys.file_exists (Filename.concat dir "spill")))

let test_crash_mid_spill_pruned_on_recovery () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () ->
      Sim_fs.reset ();
      rmrf dir)
    (fun () ->
      let db, _ = Db.open_durable dir in
      let t =
        Table.create ~name:"g"
          (Schema.create
             [ Schema.col ~nullable:false "k" Value.Int_t;
               Schema.col ~nullable:false "v" Value.Int_t ])
      in
      for i = 0 to 49_999 do
        Table.insert t [| Value.Int i; Value.Int (i mod 7) |]
      done;
      Catalog.add (Db.catalog db) t;
      (* The power cut lands on one of the spill writes. *)
      Sim_fs.crash_after_ops 10;
      (match
         Db.query db ~budget_bytes:(512 * 1024) "SELECT k, count(*) FROM g GROUP BY k"
       with
      | _ -> Alcotest.fail "armed crash did not fire during the spill"
      | exception Sim_fs.Crash _ -> ());
      Alcotest.(check bool) "strays on disk after the crash" true
        (Sys.file_exists (Filename.concat dir "spill"));
      (* Reboot: recovery prunes every orphan spill session. *)
      Sim_fs.reset ();
      let db2, _ = Db.open_durable dir in
      ignore db2;
      Alcotest.(check bool) "recovery pruned the strays" false
        (Sys.file_exists (Filename.concat dir "spill")))

(* --- Fault injection on the spill path ---------------------------------- *)

(* A dead spill device (every fsync fails) turns an over-budget query
   into a clean error — never wrong rows — the session cleans its files,
   and the same query succeeds once the device recovers. *)
let test_fsync_failure_is_clean () =
  let db = grouped_db 100_000 in
  let sql = "SELECT k, count(*) FROM g GROUP BY k" in
  Fun.protect
    ~finally:(fun () -> Sim_fs.reset ())
    (fun () ->
      Sim_fs.fail_fsync true;
      (match Db.query db ~budget_bytes:(1024 * 1024) sql with
      | r ->
          (* Acceptable only if it is the right answer (spilling may not
             have engaged before the first fsync). *)
          Alcotest.(check int) "if it answers, it answers right" 100_000
            (Table.row_count r)
      | exception Sim_fs.Io_error _ -> ()
      | exception Db.Error _ -> (* Db wraps the injected io error *) ());
      Sim_fs.fail_fsync false;
      let r = Db.query db ~budget_bytes:(1024 * 1024) sql in
      Alcotest.(check int) "recovered device: completes" 100_000 (Table.row_count r);
      Alcotest.(check bool) "no stray default-root spill dir" false
        (Sys.file_exists (Spill.default_root ())))

(* A crash mid-spill on an in-memory session leaves strays under the
   per-process tmp root (cleanup refuses to touch a crashed "disk");
   [prune_orphans] sweeps them. *)
let test_crash_mid_spill_inmemory_prune () =
  let db = grouped_db 100_000 in
  Fun.protect
    ~finally:(fun () -> Sim_fs.reset ())
    (fun () ->
      Sim_fs.crash_after_bytes 100_000;
      (match
         Db.query db ~budget_bytes:(1024 * 1024) "SELECT k, count(*) FROM g GROUP BY k"
       with
      | _ -> Alcotest.fail "armed crash did not fire during the spill"
      | exception Sim_fs.Crash _ -> ());
      Sim_fs.reset ();
      let root = Spill.default_root () in
      Alcotest.(check bool) "strays under the tmp root" true (Sys.file_exists root);
      Alcotest.(check bool) "prune found sessions" true (Spill.prune_orphans root > 0);
      (try Unix.rmdir root with Unix.Unix_error _ -> ());
      Alcotest.(check bool) "swept" false
        (Sys.file_exists (Filename.concat root "spill")))

(* Randomized crash points across the whole spilling query: whatever the
   cut, the outcome is a clean Crash and recovery leaves zero strays and
   the right answer. *)
let test_crash_point_sweep () =
  let db = grouped_db 30_000 in
  let sql = "SELECT k, count(*) FROM g GROUP BY k" in
  let reference = Table.row_count (Db.query db sql) in
  Fun.protect
    ~finally:(fun () -> Sim_fs.reset ())
    (fun () ->
      List.iter
        (fun ops ->
          Sim_fs.reset ();
          Sim_fs.crash_after_ops ops;
          (match Db.query db ~budget_bytes:(256 * 1024) sql with
          | r ->
              (* The cut landed after the last spill op: fine, but the
                 answer must be right. *)
              Alcotest.(check int)
                (Printf.sprintf "ops=%d completes right" ops)
                reference (Table.row_count r)
          | exception Sim_fs.Crash _ -> ());
          Sim_fs.reset ();
          let root = Spill.default_root () in
          ignore (Spill.prune_orphans root);
          (try Unix.rmdir root with Unix.Unix_error _ -> ());
          (* After the sweep the query answers correctly again. *)
          Alcotest.(check int)
            (Printf.sprintf "ops=%d recovered" ops)
            reference
            (Table.row_count (Db.query db ~budget_bytes:(256 * 1024) sql)))
        [ 0; 1; 3; 7; 20; 60; 200 ])

let () =
  Alcotest.run "spill"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_codec_detects_corruption;
          Alcotest.test_case "truncation detected" `Quick test_codec_detects_truncation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "all engines, serial+parallel" `Quick
            test_over_budget_completes_everywhere;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "spill-off ablation" `Quick test_spill_off_restores_hard_kill;
          Alcotest.test_case "unspillable DISTINCT" `Quick
            test_unspillable_distinct_aborts_with_detail;
          Alcotest.test_case "TCP error frames" `Quick test_tcp_abort_frames_carry_detail;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "success leaves nothing" `Quick test_no_strays_after_success;
          Alcotest.test_case "crash mid-spill pruned at recovery" `Quick
            test_crash_mid_spill_pruned_on_recovery;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fsync failure" `Quick test_fsync_failure_is_clean;
          Alcotest.test_case "crash mid-spill, tmp root" `Quick
            test_crash_mid_spill_inmemory_prune;
          Alcotest.test_case "crash point sweep" `Quick test_crash_point_sweep;
        ] );
    ]
