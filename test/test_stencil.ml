(* Tests for the copy-and-patch stencil tier: the shape-key registry,
   the binder's coverage policy and metrics, plan-cache tier-aware byte
   accounting, the EXPLAIN ANALYZE tier report — and a differential fuzz
   net checking that stencil-bound execution is result-identical to full
   codegen and to the Volcano reference across parameters, NULLs,
   dictionary- and plain-encoded strings, and parallel morsel
   execution. *)

module Value = Quill_storage.Value
module Column = Quill_storage.Column
module Catalog = Quill_storage.Catalog
module Physical = Quill_optimizer.Physical
module Picker = Quill_optimizer.Picker
module Codegen = Quill_compile.Codegen
module Stencil = Quill_compile.Stencil
module Stencil_bind = Quill_compile.Stencil_bind
module Plan_cache = Quill_adaptive.Plan_cache
module Metrics = Quill_obs.Metrics
module Governor = Quill_exec.Governor
module Exec_ctx = Quill_exec.Exec_ctx
module Pool = Quill_parallel.Pool
module Morsel = Quill_parallel.Morsel
module Vec = Quill_util.Vec

open QCheck2.Gen

(* --- Shared databases ---------------------------------------------------

   Two copies of the same random schema: one with dictionary string
   encoding (the default; "tag" has 5 distinct values so it packs as a
   dict column), one with plain string arrays.  Columnar images are
   forced while the [enable_dict] toggle is set, so each database keeps
   its encoding for the whole run. *)

let db_dict = lazy (Tutil.random_db ~seed:20260808 ~rows:160)

let db_plain =
  lazy
    (let saved = !Column.enable_dict in
     Column.enable_dict := false;
     Fun.protect
       ~finally:(fun () -> Column.enable_dict := saved)
       (fun () ->
         let db = Tutil.random_db ~seed:20260809 ~rows:140 in
         (* Build the columnar images now, while dict is disabled. *)
         ignore (Quill.Db.query db "SELECT count(*) FROM r");
         ignore (Quill.Db.query db "SELECT count(*) FROM s");
         db))

(* --- Covered-shape query generator -------------------------------------- *)

type case = { sql : string; params : Value.t array }

let pred_gen =
  (* Predicates over r(id,k,v,tag,dt): int/float comparisons (k and v are
     nullable — NULL semantics on the filter path), LIKE and IN over the
     string column, CASE, IS NULL, and parameter references. *)
  oneofl
    [ ("k > 7", [||]);
      ("k > $1", [| Value.Int 7 |]);
      ("k >= $1 AND v < $2", [| Value.Int 3; Value.Float 60.0 |]);
      ("v * 2.0 <= 90.0 OR k = 4", [||]);
      ("tag = 'alpha'", [||]);
      ("tag LIKE 'a%'", [||]);
      ("tag IN ('beta', 'gamma')", [||]);
      ("tag <> $1", [| Value.Str "delta" |]);
      ("k IS NULL", [||]);
      ("k IS NOT NULL AND v IS NOT NULL", [||]);
      ("CASE WHEN k > 10 THEN v > 50.0 ELSE v <= 50.0 END", [||]);
      ("dt >= DATE '1994-09-01'", [||]);
      ("NOT (k < 12)", [||]) ]

let scan_case =
  let* pred, params = pred_gen in
  let* items =
    oneofl
      [ "*"; "id, k, v"; "id, v * 2.0 AS vv"; "tag, id";
        "id, CASE WHEN k > 10 THEN 'hi' ELSE 'lo' END AS b"; "id + k AS x" ]
  in
  let* limit = oneofl [ ""; " LIMIT 7"; " LIMIT 5 OFFSET 3"; " LIMIT 0" ] in
  pure { sql = Printf.sprintf "SELECT %s FROM r WHERE %s%s" items pred limit; params }

let agg_case =
  let* pred, params = pred_gen in
  let* grouped = bool in
  if grouped then
    let* keys = oneofl [ "tag"; "k"; "tag, k" ] in
    pure
      {
        sql =
          Printf.sprintf
            "SELECT %s, count(*) AS n, sum(k) AS sk, avg(v) AS av, min(dt) AS mn \
             FROM r WHERE %s GROUP BY %s"
            keys pred keys;
        params;
      }
  else
    pure
      {
        sql =
          Printf.sprintf
            "SELECT count(*) AS n, count(v) AS nv, sum(k) AS sk, sum(v) AS sv, \
             avg(v) AS av, min(k) AS mnk, max(v) AS mxv, max(dt) AS mxd \
             FROM r WHERE %s"
            pred;
        params;
      }

let join_pred_gen =
  (* Join predicates must qualify every column: r and s share id and k.
     Mixing r- and s-side conjuncts exercises both scan-side pushdown
     and the post-join residual path. *)
  oneofl
    [ ("r.k > 3", [||]);
      ("r.k > $1", [| Value.Int 3 |]);
      ("r.v < $1 OR s.w > 60", [| Value.Float 70.0 |]);
      ("r.tag LIKE 'a%'", [||]);
      ("r.k IS NOT NULL", [||]);
      ("s.w >= 10 AND r.dt >= DATE '1994-09-01'", [||]);
      ("r.k IS NULL OR s.w < 90", [||]) ]

let join_case =
  let* pred, params = join_pred_gen in
  let* on = oneofl [ "r.id = s.id"; "r.k = s.k" ] in
  let* items = oneofl [ "r.id, s.w"; "r.id, r.tag, s.w + 1 AS w1"; "*" ] in
  let* extra = oneofl [ ""; " AND s.w < 50" ] in
  pure
    {
      sql =
        Printf.sprintf "SELECT %s FROM r JOIN s ON %s WHERE %s%s" items on pred extra;
      params;
    }

let case_gen = oneof [ scan_case; scan_case; agg_case; join_case ]

(* --- Differential property ---------------------------------------------- *)

(* Hash joins: the picker may price merge join cheaper for some shapes;
   force the hash algorithm so every generated join is stencil-eligible. *)
let covered_options = { Picker.default_options with Picker.force_join = Some Physical.Hash_join }

(* Parallel aggregation reorders float additions, so SUM/AVG floats may
   differ in the last bits across engines; everything else must match
   exactly (same comparator as test_parallel). *)
let value_close a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.equal a b

let rows_close_unordered a b =
  let norm rows =
    let c = Array.copy rows in
    Array.sort compare c;
    c
  in
  let a = norm a and b = norm b in
  Array.length a = Array.length b
  && Array.for_all2 (fun r1 r2 -> Array.for_all2 value_close r1 r2) a b

let with_parallelism w f =
  let saved = Pool.parallelism () in
  Pool.set_parallelism w;
  Fun.protect ~finally:(fun () -> Pool.set_parallelism saved) f

let check_case db { sql; params } =
  Quill.Db.set_options db covered_options;
  Fun.protect
    ~finally:(fun () -> Quill.Db.set_options db Picker.default_options)
    (fun () ->
      let catalog = Quill.Db.catalog db in
      let plan = Quill.Db.plan db ~params sql in
      let stencil =
        match Stencil_bind.bind catalog plan with
        | Some c -> c
        | None ->
            QCheck2.Test.fail_reportf "generated covered shape missed the binder: %s\n%s"
              sql (Physical.to_string plan)
      in
      let full = Codegen.compile catalog plan in
      let ctx = Exec_ctx.create ~params catalog in
      let reference = Quill_exec.Volcano.run ctx plan in
      let agree name got =
        if not (rows_close_unordered reference got) then
          QCheck2.Test.fail_reportf "%s disagrees with volcano on %s\nref:\n%s\ngot:\n%s"
            name sql
            (Tutil.rows_to_string reference)
            (Tutil.rows_to_string got)
      in
      agree "stencil" (Vec.to_array (stencil Governor.none params));
      agree "full codegen" (Vec.to_array (full Governor.none params));
      (* The same bound closures under morsel-parallel execution: a tiny
         morsel size splits even these small tables into many morsels. *)
      Morsel.with_size 16 (fun () ->
          with_parallelism 2 (fun () ->
              agree "stencil (parallel)" (Vec.to_array (stencil Governor.none params));
              agree "full codegen (parallel)" (Vec.to_array (full Governor.none params))));
      true)

let prop_stencil_differential =
  Tutil.qtest ~count:300 "fuzz: stencil = full codegen = volcano (dict strings)"
    case_gen
    (fun case -> check_case (Lazy.force db_dict) case)

let prop_stencil_differential_plain =
  Tutil.qtest ~count:120 "fuzz: stencil = full codegen = volcano (plain strings)"
    case_gen
    (fun case -> check_case (Lazy.force db_plain) case)

(* --- Registry ------------------------------------------------------------ *)

let test_registry_warm () =
  Stencil.warm ();
  let shapes = Stencil.shapes () in
  Alcotest.(check (list string))
    "registered shapes"
    [ "hash-join-probe"; "scan-agg-global"; "scan-agg-grouped"; "scan-filter-project" ]
    shapes;
  let g = Metrics.gauge "quill.codegen.stencil_registry" in
  Alcotest.(check int) "gauge reports library size" (List.length shapes)
    (Metrics.gauge_value g);
  (* Idempotent: warming again neither duplicates nor rebuilds. *)
  Stencil.warm ();
  Alcotest.(check (list string)) "warm is idempotent" shapes (Stencil.shapes ())

(* --- Binder coverage and metrics ----------------------------------------- *)

let test_binder_hits_and_misses () =
  let db = Lazy.force db_dict in
  let catalog = Quill.Db.catalog db in
  let m_hits = Metrics.counter "quill.codegen.stencil_hits" in
  let m_misses = Metrics.counter "quill.codegen.stencil_misses" in
  let h0 = Metrics.value m_hits and m0 = Metrics.value m_misses in
  let covered = Quill.Db.plan db "SELECT id, k FROM r WHERE k > 3" in
  Alcotest.(check bool) "covered shape binds" true
    (Stencil_bind.bind catalog covered <> None);
  Alcotest.(check int) "hit counted" (h0 + 1) (Metrics.value m_hits);
  (* ORDER BY introduces a Sort the library has no stencil for. *)
  let uncovered = Quill.Db.plan db "SELECT id, k FROM r WHERE k > 3 ORDER BY k, id" in
  Alcotest.(check bool) "uncovered shape misses" true
    (Stencil_bind.bind catalog uncovered = None);
  Alcotest.(check int) "miss counted" (m0 + 1) (Metrics.value m_misses);
  (* UDF calls are out of coverage by policy. *)
  let udf = Quill.Db.plan db "SELECT id FROM r WHERE length(tag) > 4" in
  Alcotest.(check bool) "UDF call misses" true (Stencil_bind.bind catalog udf = None);
  (* shape_of names the serving stencil without touching the counters. *)
  let h1 = Metrics.value m_hits and m1 = Metrics.value m_misses in
  Alcotest.(check (option string))
    "shape_of covered" (Some "scan-filter-project")
    (Stencil_bind.shape_of catalog covered);
  Alcotest.(check (option string)) "shape_of uncovered" None
    (Stencil_bind.shape_of catalog uncovered);
  Alcotest.(check int) "shape_of counts no hit" h1 (Metrics.value m_hits);
  Alcotest.(check int) "shape_of counts no miss" m1 (Metrics.value m_misses)

let test_binder_shapes () =
  let db = Lazy.force db_dict in
  let catalog = Quill.Db.catalog db in
  Quill.Db.set_options db
    { Picker.default_options with Picker.force_join = Some Physical.Hash_join };
  let shape sql = Stencil_bind.shape_of catalog (Quill.Db.plan db sql) in
  Alcotest.(check (option string)) "global agg" (Some "scan-agg-global")
    (shape "SELECT count(*), sum(k) FROM r WHERE v > 10.0");
  Alcotest.(check (option string)) "grouped agg" (Some "scan-agg-grouped")
    (shape "SELECT tag, count(*) FROM r GROUP BY tag");
  Alcotest.(check (option string)) "hash join" (Some "hash-join-probe")
    (shape "SELECT r.id, s.w FROM r JOIN s ON r.id = s.id");
  Alcotest.(check (option string)) "distinct agg misses" None
    (shape "SELECT count(DISTINCT k) FROM r");
  Quill.Db.set_options db Picker.default_options

(* --- Plan-cache tier-aware byte accounting ------------------------------- *)

let test_cache_tier_bytes () =
  let db = Lazy.force db_dict in
  let version = Catalog.version (Quill.Db.catalog db) in
  let plan = Quill.Db.plan db "SELECT id, k FROM r WHERE k > 3" in
  let cache = Plan_cache.create () in
  let e_stencil =
    Plan_cache.add cache ~sql:"a" ~param_types:[||] ~catalog_version:version plan
  in
  let e_full =
    Plan_cache.add cache ~sql:"b" ~param_types:[||] ~catalog_version:version plan
  in
  let base_stencil = e_stencil.Plan_cache.bytes in
  let base_full = e_full.Plan_cache.bytes in
  let used0 = Plan_cache.used_bytes cache in
  Plan_cache.note_compiled cache e_stencil ~tier:Codegen.Tier_stencil;
  Plan_cache.note_compiled cache e_full ~tier:Codegen.Tier_full;
  Alcotest.(check bool) "stencil charge is flat and small" true
    (e_stencil.Plan_cache.bytes - base_stencil < e_full.Plan_cache.bytes - base_full);
  Alcotest.(check bool) "tiers recorded" true
    (e_stencil.Plan_cache.compiled_tier = Some Codegen.Tier_stencil
    && e_full.Plan_cache.compiled_tier = Some Codegen.Tier_full);
  Alcotest.(check int) "used_bytes tracks both charges"
    (used0
    + (e_stencil.Plan_cache.bytes - base_stencil)
    + (e_full.Plan_cache.bytes - base_full))
    (Plan_cache.used_bytes cache);
  (* The stencil charge is flat in plan size while the full-codegen one
     grows with it — that's what keeps cheap stencil plans off the
     full-codegen eviction curve. *)
  let big_plan =
    Quill.Db.plan db
      "SELECT r.id, s.w FROM r JOIN s ON r.id = s.id WHERE r.k > 2 AND s.w < 90"
  in
  let b_stencil =
    Plan_cache.add cache ~sql:"c" ~param_types:[||] ~catalog_version:version big_plan
  in
  let b_full =
    Plan_cache.add cache ~sql:"d" ~param_types:[||] ~catalog_version:version big_plan
  in
  let bb_stencil = b_stencil.Plan_cache.bytes and bb_full = b_full.Plan_cache.bytes in
  Plan_cache.note_compiled cache b_stencil ~tier:Codegen.Tier_stencil;
  Plan_cache.note_compiled cache b_full ~tier:Codegen.Tier_full;
  Alcotest.(check int) "stencil charge is flat in plan size"
    (e_stencil.Plan_cache.bytes - base_stencil)
    (b_stencil.Plan_cache.bytes - bb_stencil);
  Alcotest.(check bool) "full-codegen charge grows with the plan" true
    (b_full.Plan_cache.bytes - bb_full > e_full.Plan_cache.bytes - base_full)

(* --- EXPLAIN ANALYZE tier report ----------------------------------------- *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_explain_analyze_tier () =
  let db = Lazy.force db_dict in
  let covered = Quill.Db.explain db ~analyze:true "SELECT id, k FROM r WHERE k > 3" in
  Alcotest.(check bool) "stencil tier reported" true
    (contains_sub covered "compile tier: stencil (shape scan-filter-project)");
  let uncovered =
    Quill.Db.explain db ~analyze:true "SELECT id, k FROM r WHERE k > 3 ORDER BY k, id"
  in
  Alcotest.(check bool) "full codegen tier reported" true
    (contains_sub uncovered "compile tier: full codegen");
  Alcotest.(check bool) "rejected candidates still reported" true
    (contains_sub uncovered "rejected candidates")

let () =
  Alcotest.run "stencil"
    [
      ( "registry",
        [ Alcotest.test_case "warm and shape keys" `Quick test_registry_warm ] );
      ( "binder",
        [ Alcotest.test_case "hits, misses, shape_of" `Quick test_binder_hits_and_misses;
          Alcotest.test_case "shape coverage" `Quick test_binder_shapes ] );
      ( "cache",
        [ Alcotest.test_case "tier-aware bytes" `Quick test_cache_tier_bytes ] );
      ( "explain",
        [ Alcotest.test_case "analyze reports tier" `Quick test_explain_analyze_tier ] );
      ( "differential",
        [ prop_stencil_differential; prop_stencil_differential_plain ] );
    ]
