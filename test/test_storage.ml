(* Tests for columns, tables, catalog, CSV and indexes. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Column = Quill_storage.Column
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Csv = Quill_storage.Csv
module Index = Quill_storage.Index

let int_col vs = Column.of_values Value.Int_t (Array.of_list vs)

let test_column_roundtrip () =
  let vs = [ Value.Int 1; Value.Null; Value.Int (-7) ] in
  let c = int_col vs in
  Alcotest.(check int) "length" 3 (Column.length c);
  Alcotest.(check bool) "null" true (Column.is_null c 1);
  List.iteri
    (fun i v -> Alcotest.check Tutil.value_testable "value" v (Column.get c i))
    vs

let prop_column_roundtrip =
  Tutil.qtest "of_values/get roundtrip all dtypes"
    QCheck2.Gen.(
      let* dt = Tutil.dtype_gen in
      let* vs = list_size (int_range 0 50) (Tutil.value_of_dtype dt) in
      pure (dt, vs))
    (fun (dt, vs) ->
      let c = Column.of_values dt (Array.of_list vs) in
      List.for_all2 Value.equal vs (Array.to_list (Column.to_values c)))

let test_column_gather () =
  let c = int_col [ Value.Int 10; Value.Null; Value.Int 30; Value.Int 40 ] in
  let g = Column.gather c [| 3; 1; 0 |] in
  Alcotest.check Tutil.value_testable "g0" (Value.Int 40) (Column.get g 0);
  Alcotest.check Tutil.value_testable "g1" Value.Null (Column.get g 1);
  Alcotest.check Tutil.value_testable "g2" (Value.Int 10) (Column.get g 2)

let test_column_type_error () =
  Alcotest.check_raises "wrong type"
    (Invalid_argument "Column.of_values: expected INT, got x") (fun () ->
      ignore (Column.of_values Value.Int_t [| Value.Str "x" |]))

let mk_table () =
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "a" Value.Int_t;
        Schema.col "b" Value.Str_t;
        Schema.col "c" Value.Float_t ]
  in
  Table.create ~name:"t" schema

let test_table_insert_and_get () =
  let t = mk_table () in
  Table.insert t [| Value.Int 1; Value.Str "x"; Value.Float 1.5 |];
  Table.insert t [| Value.Int 2; Value.Null; Value.Int 3 |];
  (* Int widened in float column *)
  Alcotest.(check int) "rows" 2 (Table.row_count t);
  Alcotest.check Tutil.value_testable "widened" (Value.Float 3.0) (Table.get t 1 2);
  Alcotest.check Tutil.value_testable "null kept" Value.Null (Table.get t 1 1)

let test_table_not_null () =
  let t = mk_table () in
  Alcotest.(check bool) "raises" true
    (try
       Table.insert t [| Value.Null; Value.Null; Value.Null |];
       false
     with Invalid_argument _ -> true)

let test_table_arity_and_types () =
  let t = mk_table () in
  Alcotest.(check bool) "arity" true
    (try
       Table.insert t [| Value.Int 1 |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "type" true
    (try
       Table.insert t [| Value.Str "no"; Value.Null; Value.Null |];
       false
     with Invalid_argument _ -> true)

let test_table_columnar_cache () =
  let t = mk_table () in
  Table.insert t [| Value.Int 1; Value.Str "x"; Value.Float 1.0 |];
  let c1 = Table.columnar t in
  Alcotest.(check bool) "cached" true (c1 == Table.columnar t);
  Table.insert t [| Value.Int 2; Value.Str "y"; Value.Float 2.0 |];
  let c2 = Table.columnar t in
  Alcotest.(check bool) "invalidated" true (c1 != c2);
  Alcotest.(check int) "fresh length" 2 (Column.length c2.(0))

let test_of_columns () =
  let schema = Schema.create [ Schema.col "a" Value.Int_t; Schema.col "b" Value.Str_t ] in
  let cols =
    [| Column.of_values Value.Int_t [| Value.Int 1; Value.Int 2 |];
       Column.of_values Value.Str_t [| Value.Str "x"; Value.Null |] |]
  in
  let t = Table.of_columns ~name:"t" schema cols in
  Alcotest.(check int) "rows" 2 (Table.row_count t);
  Alcotest.check Tutil.value_testable "get" Value.Null (Table.get t 1 1)

let test_catalog () =
  let c = Catalog.create () in
  let v0 = Catalog.version c in
  Catalog.add c (mk_table ());
  Alcotest.(check bool) "version bumped" true (Catalog.version c > v0);
  Alcotest.(check bool) "found" true (Catalog.find c "t" <> None);
  Alcotest.(check (list string)) "names" [ "t" ] (Catalog.names c);
  Alcotest.(check bool) "dup add" true
    (try
       Catalog.add c (mk_table ());
       false
     with Invalid_argument _ -> true);
  Catalog.drop c "t";
  Alcotest.(check bool) "dropped" true (Catalog.find c "t" = None);
  Alcotest.(check bool) "drop missing" true
    (try
       Catalog.drop c "t";
       false
     with Invalid_argument _ -> true)

let test_csv_parse_quoting () =
  let rows = Csv.parse_string "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n1,\"multi\nline\"\n" in
  Alcotest.(check int) "rows" 3 (List.length rows);
  Alcotest.(check (list string)) "quoted" [ "x,y"; "he said \"hi\"" ] (List.nth rows 1);
  Alcotest.(check (list string)) "newline" [ "1"; "multi\nline" ] (List.nth rows 2)

let test_csv_trailing_quoted_empty () =
  (* Regression: a quoted empty field at end of input left both the buffer
     and the row-in-progress empty, so the final flush was skipped and the
     field (or the whole last row) vanished. *)
  Alcotest.(check (list (list string))) "lone quoted empty" [ [ "" ] ]
    (Csv.parse_string "\"\"");
  Alcotest.(check (list (list string))) "trailing quoted empty field" [ [ "a"; "" ] ]
    (Csv.parse_string "a,\"\"");
  Alcotest.(check (list (list string))) "quoted empty last row" [ [ "x" ]; [ "" ] ]
    (Csv.parse_string "x\n\"\"");
  Alcotest.(check (list (list string))) "two quoted empties, no newline"
    [ [ ""; "" ] ]
    (Csv.parse_string "\"\",\"\"");
  (* With a final newline the row was already kept; it must stay so. *)
  Alcotest.(check (list (list string))) "with newline" [ [ "a"; "" ] ]
    (Csv.parse_string "a,\"\"\n");
  (* And truly empty input still parses to no rows at all. *)
  Alcotest.(check (list (list string))) "empty input" [] (Csv.parse_string "")

let test_csv_roundtrip () =
  let schema =
    Schema.create
      [ Schema.col "i" Value.Int_t; Schema.col "s" Value.Str_t; Schema.col "d" Value.Date_t ]
  in
  let t = Table.create ~name:"csv_t" schema in
  Table.insert t [| Value.Int 1; Value.Str "a,b"; Value.Date 9000 |];
  Table.insert t [| Value.Null; Value.Str "line\nbreak"; Value.Null |];
  let path = Filename.temp_file "quill" ".csv" in
  Csv.save t path;
  let t2 = Csv.load ~name:"csv_t2" ~schema path in
  Sys.remove path;
  Alcotest.(check bool) "same rows" true
    (Tutil.same_rows_ordered (Tutil.table_rows t) (Tutil.table_rows t2))

let test_csv_null_vs_empty () =
  (* Regression (found by the recovery fuzz): [Str ""] used to be written
     as a bare empty field, which reads back as NULL — so a checkpointed
     snapshot diverged from the in-memory state.  A bare empty field is
     NULL; a quoted empty field is the empty string, both ways. *)
  let schema =
    Schema.create [ Schema.col "i" Value.Int_t; Schema.col "s" Value.Str_t ]
  in
  let rows = Csv.rows_of_string ~schema "i,s\n1,\"\"\n2,\n" in
  Alcotest.(check bool) "quoted empty is Str \"\"" true
    (List.nth rows 0 = [| Value.Int 1; Value.Str "" |]);
  Alcotest.(check bool) "bare empty is NULL" true
    (List.nth rows 1 = [| Value.Int 2; Value.Null |]);
  let t = Table.create ~name:"ne" schema in
  Table.insert t [| Value.Int 1; Value.Str "" |];
  Table.insert t [| Value.Int 2; Value.Null |];
  let t2 = Table.of_rows ~name:"ne2" schema (Csv.rows_of_string ~schema (Csv.to_string t)) in
  Alcotest.(check bool) "round trip preserves the distinction" true
    (Tutil.same_rows_ordered (Tutil.table_rows t) (Tutil.table_rows t2))

let test_csv_errors () =
  let schema = Schema.create [ Schema.col "i" Value.Int_t ] in
  Alcotest.(check bool) "bad value" true
    (try
       ignore (Csv.rows_of_string ~schema "i\nnotanint\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "bad arity" true
    (try
       ignore (Csv.rows_of_string ~schema "i\n1,2\n");
       false
     with Failure _ -> true)

let test_csv_error_context () =
  (* Regression: CSV parse failures must say which source (file or
     table), which data row, and which column went wrong. *)
  let schema =
    Schema.create [ Schema.col "i" Value.Int_t; Schema.col "s" Value.Str_t ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let check_msg what text fragments =
    try
      ignore (Csv.rows_of_string ~schema ~src:"emp.csv" text);
      Alcotest.failf "%s: expected a parse failure" what
    with Failure m ->
      List.iter
        (fun frag ->
          if not (contains m frag) then
            Alcotest.failf "%s: error %S lacks %S" what m frag)
        fragments
  in
  check_msg "bad value" "i,s\n1,a\nnope,b\n"
    [ "emp.csv"; "row 2"; "column i"; "nope"; "INT" ];
  check_msg "bad arity" "i,s\n1\n" [ "emp.csv"; "row 1"; "1 fields, expected 2" ];
  (* without a named source the row/column context must still be there *)
  (try
     ignore (Csv.rows_of_string ~schema "i,s\n1,a\nx,y\n");
     Alcotest.fail "expected a parse failure"
   with Failure m ->
     if not (contains m "CSV row 2") then Alcotest.failf "error %S lacks row context" m);
  (* headerless data counts rows from 1 too *)
  (try
     ignore (Csv.rows_of_string ~schema ~has_header:false "bad,b\n");
     Alcotest.fail "expected a parse failure"
   with Failure m ->
     if not (contains m "row 1") then Alcotest.failf "error %S lacks row context" m)

let indexed_table () =
  let schema = Schema.create [ Schema.col "k" Value.Int_t; Schema.col "v" Value.Str_t ] in
  let t = Table.create ~name:"it" schema in
  List.iteri
    (fun i k ->
      Table.insert t
        [| (if k = 99 then Value.Null else Value.Int k); Value.Str (string_of_int i) |])
    [ 5; 3; 8; 3; 99; 1; 8 ];
  t

let test_hash_index () =
  let t = indexed_table () in
  let idx = Index.Hash_index.build t 0 in
  Alcotest.(check int) "dup key" 2 (List.length (Index.Hash_index.lookup idx (Value.Int 3)));
  Alcotest.(check int) "missing" 0 (List.length (Index.Hash_index.lookup idx (Value.Int 42)));
  Alcotest.(check int) "null not indexed" 0
    (List.length (Index.Hash_index.lookup idx Value.Null));
  Alcotest.(check int) "distinct" 4 (Index.Hash_index.distinct_keys idx)

let test_ordered_index () =
  let t = indexed_table () in
  let idx = Index.Ordered_index.build t 0 in
  Alcotest.(check int) "size excludes null" 6 (Index.Ordered_index.size idx);
  let r = Index.Ordered_index.range idx ~lo:(Value.Int 3, true) ~hi:(Value.Int 8, false) () in
  (* keys 3,3,5 *)
  Alcotest.(check int) "range count" 3 (List.length r);
  let eq = Index.Ordered_index.lookup idx (Value.Int 8) in
  Alcotest.(check int) "eq count" 2 (List.length eq);
  let all = Index.Ordered_index.range idx () in
  Alcotest.(check int) "unbounded" 6 (List.length all)

let prop_ordered_index_range =
  Tutil.qtest ~count:100 "ordered index range = linear scan"
    QCheck2.Gen.(
      let* keys = list_size (int_range 0 60) (int_range 0 20) in
      let* lo = int_range 0 20 in
      let* hi = int_range 0 20 in
      pure (keys, min lo hi, max lo hi))
    (fun (keys, lo, hi) ->
      let schema = Schema.create [ Schema.col "k" Value.Int_t ] in
      let t = Table.create ~name:"p" schema in
      List.iter (fun k -> Table.insert t [| Value.Int k |]) keys;
      let idx = Index.Ordered_index.build t 0 in
      let got =
        Index.Ordered_index.range idx ~lo:(Value.Int lo, true) ~hi:(Value.Int hi, true) ()
        |> List.sort compare
      in
      let expect =
        List.filteri (fun _ _ -> true) keys
        |> List.mapi (fun i k -> (i, k))
        |> List.filter (fun (_, k) -> k >= lo && k <= hi)
        |> List.map fst |> List.sort compare
      in
      got = expect)

let () =
  Alcotest.run "storage"
    [
      ( "column",
        [
          Alcotest.test_case "roundtrip" `Quick test_column_roundtrip;
          prop_column_roundtrip;
          Alcotest.test_case "gather" `Quick test_column_gather;
          Alcotest.test_case "type error" `Quick test_column_type_error;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert/get" `Quick test_table_insert_and_get;
          Alcotest.test_case "not null" `Quick test_table_not_null;
          Alcotest.test_case "arity/types" `Quick test_table_arity_and_types;
          Alcotest.test_case "columnar cache" `Quick test_table_columnar_cache;
          Alcotest.test_case "of_columns" `Quick test_of_columns;
        ] );
      ("catalog", [ Alcotest.test_case "lifecycle" `Quick test_catalog ]);
      ( "csv",
        [
          Alcotest.test_case "quoting" `Quick test_csv_parse_quoting;
          Alcotest.test_case "trailing quoted empty" `Quick test_csv_trailing_quoted_empty;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "null vs empty string" `Quick test_csv_null_vs_empty;
          Alcotest.test_case "errors" `Quick test_csv_errors;
          Alcotest.test_case "error context" `Quick test_csv_error_context;
        ] );
      ( "index",
        [
          Alcotest.test_case "hash" `Quick test_hash_index;
          Alcotest.test_case "ordered" `Quick test_ordered_index;
          prop_ordered_index_range;
        ] );
    ]
