(* The traffic driver and the hardened prepared path under load.

   - the fine latency recorder's percentiles against a sorted-array
     oracle (within one log-bucket ratio; max is exact);
   - differential replays: the same seeded streams through every
     execution mode (prepared / fresh / each engine / a parallel
     session) and both transports (in-process sessions, TCP) must
     produce the identical result-multiset digest with every query
     acknowledged;
   - cache transparency fuzz: for random parameterized queries, the
     plan-cached path returns exactly what a fresh parse-plan-execute
     returns;
   - DDL/DML churn concurrent with prepared execution: plans are
     invalidated mid-run and replanned without wrong results. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Rng = Quill_util.Rng
module Db = Quill.Db
module Server = Quill_server.Server
module Latency = Quill_driver.Latency
module Driver = Quill_driver.Driver
module Metrics = Quill_obs.Metrics

(* --- latency recorder vs sorted-array oracle ---------------------------- *)

(* One log-bucket ratio: 10^(1/20) ~ 1.122; percentiles report the upper
   bucket bound, so they sit within [oracle, oracle * ratio]. *)
let bucket_ratio = 10.0 ** (1.0 /. Float.of_int Latency.buckets_per_decade)

let test_latency_percentiles () =
  let rng = Rng.create 11 in
  let n = 5000 in
  let samples =
    Array.init n (fun _ ->
        (* spread over 5 decades: 10us .. 1s *)
        let scale = 1e-5 *. (10.0 ** Float.of_int (Rng.int rng 5)) in
        scale *. (1.0 +. (Float.of_int (Rng.int rng 9000) /. 1000.0)))
  in
  let r = Latency.create () in
  Array.iter (Latency.record r) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  Alcotest.(check int) "count" n (Latency.count r);
  let expect_mean = Array.fold_left ( +. ) 0.0 samples /. Float.of_int n in
  Alcotest.(check bool) "mean" true
    (Float.abs (Latency.mean r -. expect_mean) < 1e-9);
  Alcotest.(check bool) "max exact" true
    (Latency.max_seconds r = sorted.(n - 1));
  List.iter
    (fun q ->
      let rank = max 1 (Float.to_int (Float.ceil (q *. Float.of_int n))) in
      let oracle = sorted.(rank - 1) in
      let got = Latency.percentile r q in
      if got < oracle *. 0.999 || got > oracle *. bucket_ratio *. 1.001 then
        Alcotest.failf "p%.0f: got %.9f, oracle %.9f (ratio %.4f)" (q *. 100.0)
          got oracle (got /. oracle))
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 0.999; 1.0 ]

let test_latency_empty_and_tiny () =
  let r = Latency.create () in
  Alcotest.(check bool) "empty percentile" true (Latency.percentile r 0.5 = 0.0);
  (* Sub-microsecond observations land in bucket 0 and report its bound
     clamped by the true maximum. *)
  Latency.record r 1e-9;
  Alcotest.(check bool) "tiny clamped to max" true
    (Latency.percentile r 0.5 <= 1e-6)

(* --- shared fixture: a table with point, range and group-by traffic ----- *)

let traffic_db ~rows ~seed =
  let rng = Rng.create seed in
  let schema =
    Schema.create
      [ Schema.col ~nullable:false "k" Value.Int_t;
        Schema.col ~nullable:false "v" Value.Int_t;
        Schema.col ~nullable:false "grp" Value.Int_t ]
  in
  let t = Table.create ~name:"t" schema in
  for _ = 1 to rows do
    let v =
      if Rng.int rng 10 < 9 then Rng.int rng 10 else Rng.int rng 1_000_000
    in
    Table.insert t
      [| Value.Int (Rng.int rng rows); Value.Int v; Value.Int (Rng.int rng 16) |]
  done;
  let db = Db.create () in
  Catalog.add (Db.catalog db) t;
  ignore (Db.exec db "CREATE INDEX ON t (k)");
  Db.analyze db "t";
  db

let gen_op ~rows rng =
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 | 5 ->
      { Driver.sql = "SELECT v, grp FROM t WHERE k = $1";
        params = [| Value.Int (Rng.int rng rows) |] }
  | 6 | 7 ->
      let cutoff =
        if Rng.int rng 2 = 0 then Rng.int rng 10 else Rng.int rng 1_000_000
      in
      { Driver.sql = "SELECT count(*) FROM t WHERE v < $1";
        params = [| Value.Int cutoff |] }
  | _ ->
      { Driver.sql = "SELECT grp, count(*) FROM t WHERE v < $1 GROUP BY grp";
        params = [| Value.Int (Rng.int rng 20) |] }

let sessions = 3
let per_session = 60

let streams ~rows () =
  Driver.streams ~sessions ~per_session ~seed:99 (gen_op ~rows)

(* --- differential: every mode and transport, one digest ----------------- *)

let run_checked ?spec ~rows target =
  let r = Driver.run ?spec ~target (streams ~rows ()) in
  Alcotest.(check int) "no errors" 0 r.Driver.errors;
  Alcotest.(check int) "all acked" r.Driver.issued r.Driver.acked;
  Alcotest.(check int) "all issued" (sessions * per_session) r.Driver.issued;
  r.Driver.digest

let test_driver_differential () =
  let rows = 2000 in
  let db = traffic_db ~rows ~seed:5 in
  let store = Db.share db in
  let base = run_checked ~rows (Driver.In_process store) in
  List.iter
    (fun (name, mode) ->
      let spec = { Driver.default_spec with mode } in
      let d = run_checked ~spec ~rows (Driver.In_process store) in
      Alcotest.(check int) (name ^ " digest = prepared digest") base d)
    [ ("fresh", Driver.Fresh);
      ("volcano", Driver.Engine Db.Volcano);
      ("vectorized", Driver.Engine Db.Vectorized);
      ("compiled", Driver.Engine Db.Compiled) ];
  (* A parallel session, replaying every stream sequentially: the digest
     is an order-insensitive sum, so partitioning across sessions and
     folding in one session must agree. *)
  let par = Db.session store in
  Db.set_parallelism par 4;
  let d =
    Array.fold_left
      (fun acc ops ->
        Array.fold_left
          (fun acc op ->
            acc
            + Driver.digest_of_table
                (Db.query par ~params:op.Driver.params op.Driver.sql))
          acc ops)
      0 (streams ~rows ())
  in
  Alcotest.(check int) "parallel session digest" base d;
  (* And over TCP: per-connection prepared statements on the server's
     shared store. *)
  let srv =
    Server.start ~config:{ Server.default_config with Server.port = 0 } store
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let d =
    run_checked ~rows
      (Driver.Tcp { host = "127.0.0.1"; port = Server.port srv })
  in
  Alcotest.(check int) "tcp digest" base d

(* --- cache transparency fuzz -------------------------------------------- *)

let test_prepared_matches_fresh_fuzz () =
  let rows = 1500 in
  let db = traffic_db ~rows ~seed:21 in
  Db.set_policy db (Quill_adaptive.Tiering.Tiered 2);
  let rng = Rng.create 4242 in
  for _ = 1 to 150 do
    let op = gen_op ~rows rng in
    let fresh = Tutil.table_rows (Db.query db ~params:op.Driver.params op.Driver.sql) in
    let cached =
      Tutil.table_rows (Db.query_adaptive db ~params:op.Driver.params op.Driver.sql)
    in
    Tutil.check_same_unordered op.Driver.sql fresh cached
  done;
  (* The mix has three statements; band variants may add a few entries,
     but the cache must have been exercised, not bypassed. *)
  let entries, runs, _ = Db.cache_stats db in
  Alcotest.(check bool) "cache populated" true (entries >= 3);
  Alcotest.(check bool) "cache reused" true (runs > entries)

(* --- DDL/DML churn concurrent with prepared execution ------------------- *)

let test_ddl_churn_during_prepared () =
  let rows = 2000 in
  let db = traffic_db ~rows ~seed:33 in
  let store = Db.share db in
  let m_misses = Metrics.counter "quill.plan_cache.misses" in
  (* Reference digest from a quiet run over the same streams; its miss
     delta is the cold-start cost (one per statement, band and session). *)
  let misses0 = Metrics.value m_misses in
  let quiet = run_checked ~rows (Driver.In_process store) in
  let quiet_misses = Metrics.value m_misses - misses0 in
  let stop = Atomic.make false in
  let churner =
    Thread.create
      (fun () ->
        (* Catalog churn from a concurrent session: DDL plus DML on a
           side table, each bumping the catalog version and invalidating
           every cached plan in every other session. *)
        let s = Db.session store in
        ignore (Db.exec s "CREATE TABLE churn (x INT NOT NULL)");
        while not (Atomic.get stop) do
          ignore (Db.exec s "INSERT INTO churn VALUES (1)");
          Thread.delay 0.001
        done)
      ()
  in
  (* The churner is a real concurrent thread, so whether an insert lands
     mid-run is a scheduling race; retry the (short) noisy run until one
     does.  Every iteration still checks the digest, so correctness under
     churn is asserted regardless of which run the churn hits. *)
  let landed = ref false in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join churner)
    (fun () ->
      let attempts = ref 0 in
      while (not !landed) && !attempts < 50 do
        incr attempts;
        let misses1 = Metrics.value m_misses in
        let noisy = run_checked ~rows (Driver.In_process store) in
        Alcotest.(check int) "digest unaffected by churn" quiet noisy;
        if Metrics.value m_misses - misses1 > quiet_misses then landed := true
        else Thread.delay 0.002
      done);
  (* The churn forced replans: strictly more misses than the quiet run's
     cold start. *)
  Alcotest.(check bool) "churn caused replans" true !landed

(* --- open-loop schedule control ----------------------------------------- *)

let test_open_loop_rate () =
  let rows = 500 in
  let db = traffic_db ~rows ~seed:9 in
  let store = Db.share db in
  let rate = 2000.0 in
  let spec = { Driver.default_spec with rate } in
  let r = Driver.run ~spec ~target:(Driver.In_process store) (streams ~rows ()) in
  Alcotest.(check int) "no errors" 0 r.Driver.errors;
  Alcotest.(check int) "all acked" r.Driver.issued r.Driver.acked;
  (* 180 arrivals at 2000/s: the run cannot finish faster than the
     schedule's span. *)
  let span = Float.of_int ((sessions * per_session) - 1) /. rate in
  Alcotest.(check bool) "paced by the schedule" true (r.Driver.elapsed >= span);
  Alcotest.(check bool) "lag recorded" true (r.Driver.max_lag >= 0.0)

let () =
  Alcotest.run "traffic"
    [
      ( "latency",
        [
          Alcotest.test_case "percentiles vs oracle" `Quick test_latency_percentiles;
          Alcotest.test_case "empty and tiny" `Quick test_latency_empty_and_tiny;
        ] );
      ( "driver",
        [
          Alcotest.test_case "differential modes+transports" `Quick
            test_driver_differential;
          Alcotest.test_case "open-loop pacing" `Quick test_open_loop_rate;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "prepared = fresh (fuzz)" `Quick
            test_prepared_matches_fresh_fuzz;
          Alcotest.test_case "DDL churn during prepared" `Quick
            test_ddl_churn_during_prepared;
        ] );
    ]
