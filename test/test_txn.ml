(* Snapshot-isolation MVCC: visibility, snapshot stability, conflicts,
   rollback, durability of transaction frame groups, and concurrent WAL
   group commit (N writer threads committing in parallel must produce a
   replayable log whose recovered state equals the committed state). *)

module Db = Quill.Db
module Sim_fs = Quill_storage.Sim_fs
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Value = Quill_storage.Value

let tmpdir () =
  let p = Filename.temp_file "quill_txn" "" in
  Sys.remove p;
  p

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else Sys.remove path

let run db sql = ignore (Db.exec db sql)

let int_of db sql =
  match Table.get (Db.query db sql) 0 0 with
  | Value.Int n -> n
  | Value.Null -> 0
  | v -> Alcotest.failf "expected int from %s, got %s" sql (Value.to_string v)

let check_int msg want got = Alcotest.(check int) msg want got

(* --- visibility and snapshot stability ---------------------------------- *)

let test_visibility () =
  let root = Db.create () in
  run root "CREATE TABLE t (a INT NOT NULL)";
  run root "INSERT INTO t VALUES (1), (2)";
  let store = Db.share root in
  let s1 = Db.session store and s2 = Db.session store in
  check_int "fresh session sees seed" 2 (int_of s1 "SELECT COUNT(*) FROM t");
  (* Uncommitted writes are invisible to others. *)
  run s1 "BEGIN";
  run s1 "INSERT INTO t VALUES (3)";
  check_int "own writes visible in txn" 3 (int_of s1 "SELECT COUNT(*) FROM t");
  check_int "uncommitted invisible to s2" 2 (int_of s2 "SELECT COUNT(*) FROM t");
  check_int "uncommitted invisible to root" 2 (int_of root "SELECT COUNT(*) FROM t");
  run s1 "COMMIT";
  check_int "committed visible to s2" 3 (int_of s2 "SELECT COUNT(*) FROM t");
  check_int "committed visible to root" 3 (int_of root "SELECT COUNT(*) FROM t")

let test_snapshot_stability () =
  let root = Db.create () in
  run root "CREATE TABLE t (a INT NOT NULL)";
  run root "INSERT INTO t VALUES (1), (2)";
  let store = Db.share root in
  let reader = Db.session store and writer = Db.session store in
  run reader "BEGIN";
  check_int "pinned at 2" 2 (int_of reader "SELECT COUNT(*) FROM t");
  run writer "INSERT INTO t VALUES (3)";
  run writer "INSERT INTO t VALUES (4)";
  check_int "snapshot unmoved by commits" 2 (int_of reader "SELECT COUNT(*) FROM t");
  check_int "sum also unmoved" 3 (int_of reader "SELECT SUM(a) FROM t");
  run reader "COMMIT";
  check_int "refreshed after commit" 4 (int_of reader "SELECT COUNT(*) FROM t")

let test_conflict_first_committer_wins () =
  let root = Db.create () in
  run root "CREATE TABLE t (a INT NOT NULL)";
  run root "CREATE TABLE u (b INT NOT NULL)";
  run root "INSERT INTO t VALUES (1)";
  run root "INSERT INTO u VALUES (1)";
  let store = Db.share root in
  let s1 = Db.session store and s2 = Db.session store in
  (* Write-write on the same table: exactly the second committer loses. *)
  run s1 "BEGIN";
  run s2 "BEGIN";
  run s1 "UPDATE t SET a = 10";
  run s2 "UPDATE t SET a = 20";
  run s1 "COMMIT";
  (match Db.exec s2 "COMMIT" with
  | _ -> Alcotest.fail "second committer must conflict"
  | exception Db.Conflict _ -> ());
  check_int "winner's write survives" 10 (int_of root "SELECT MAX(a) FROM t");
  (* The loser's session stays usable and can retry. *)
  run s2 "BEGIN";
  run s2 "UPDATE t SET a = 30";
  run s2 "COMMIT";
  check_int "retry on fresh snapshot wins" 30 (int_of root "SELECT MAX(a) FROM t");
  (* Disjoint write sets never conflict. *)
  run s1 "BEGIN";
  run s2 "BEGIN";
  run s1 "UPDATE t SET a = 40";
  run s2 "UPDATE u SET b = 40";
  run s1 "COMMIT";
  run s2 "COMMIT";
  check_int "disjoint commit t" 40 (int_of root "SELECT MAX(a) FROM t");
  check_int "disjoint commit u" 40 (int_of root "SELECT MAX(b) FROM u")

let test_rollback () =
  let root = Db.create () in
  run root "CREATE TABLE t (a INT NOT NULL)";
  run root "INSERT INTO t VALUES (1)";
  let store = Db.share root in
  let s = Db.session store in
  run s "BEGIN";
  run s "INSERT INTO t VALUES (2)";
  run s "CREATE TABLE fresh (x INT NOT NULL)";
  run s "ROLLBACK";
  check_int "insert discarded" 1 (int_of s "SELECT COUNT(*) FROM t");
  Alcotest.(check bool)
    "DDL discarded" true
    (Catalog.find (Db.catalog s) "fresh" = None);
  Alcotest.(check bool)
    "DDL never escaped" true
    (Catalog.find (Db.catalog root) "fresh" = None);
  (* A failing statement aborts the whole transaction. *)
  run s "BEGIN";
  run s "INSERT INTO t VALUES (5)";
  (match Db.exec s "INSERT INTO nosuch VALUES (1)" with
  | _ -> Alcotest.fail "insert into missing table must fail"
  | exception Db.Error _ -> ());
  Alcotest.(check bool) "txn rolled back on error" false (Db.in_transaction s);
  check_int "partial txn discarded" 1 (int_of s "SELECT COUNT(*) FROM t")

let test_txn_control_errors () =
  let db = Db.create () in
  run db "CREATE TABLE t (a INT NOT NULL)";
  (match Db.exec db "COMMIT" with
  | _ -> Alcotest.fail "COMMIT outside txn must error"
  | exception Db.Error _ -> ());
  run db "BEGIN";
  (match Db.exec db "BEGIN" with
  | _ -> Alcotest.fail "nested BEGIN must error"
  | exception Db.Error _ -> ());
  run db "ROLLBACK";
  (* BEGIN on a never-shared database auto-creates a private store. *)
  run db "BEGIN";
  run db "INSERT INTO t VALUES (1)";
  run db "COMMIT";
  check_int "private store committed" 1 (int_of db "SELECT COUNT(*) FROM t")

let test_ddl_through_txn () =
  let root = Db.create () in
  let store = Db.share root in
  let s1 = Db.session store and s2 = Db.session store in
  run s1 "BEGIN";
  run s1 "CREATE TABLE built (k INT NOT NULL, v TEXT)";
  run s1 "INSERT INTO built VALUES (1, 'x'), (2, 'y')";
  run s1 "CREATE INDEX ON built (k)";
  run s1 "COMMIT";
  check_int "created table + rows visible" 2 (int_of s2 "SELECT COUNT(*) FROM built");
  check_int "index usable in s2" 1
    (int_of s2 "SELECT COUNT(*) FROM built WHERE k = 2");
  run s2 "DROP TABLE built";
  Alcotest.(check bool)
    "drop visible to s1" true
    (match Db.exec s1 "SELECT COUNT(*) FROM built" with
    | _ -> false
    | exception Db.Error _ -> true)

(* --- row/chunk-granular conflict detection ------------------------------ *)

(* Run [f] with small conflict-detection chunks so a few hundred rows
   span many chunks. *)
let with_chunk_rows n f =
  let old = !Table.default_chunk_rows in
  Table.default_chunk_rows := n;
  Fun.protect ~finally:(fun () -> Table.default_chunk_rows := old) f

(* Seed one hot table with [n] rows id 0..n-1, v = 0. *)
let seed_hot root n =
  run root "CREATE TABLE hot (id INT NOT NULL, v INT NOT NULL)";
  let b = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (Printf.sprintf "(%d, 0)" i)
  done;
  run root ("INSERT INTO hot VALUES " ^ Buffer.contents b)

(* Eight transactions updating disjoint chunk-aligned row ranges of one
   hot table, all open before any commits: every one must commit (PR 6's
   name-granular check aborted all but the first), and every range's
   update must survive — later committers splice their chunks onto the
   winners' versions. *)
let test_disjoint_writers_all_commit () =
  with_chunk_rows 16 (fun () ->
      let writers = 8 in
      let root = Db.create () in
      seed_hot root (writers * 16);
      let store = Db.share root in
      let sessions = List.init writers (fun _ -> Db.session store) in
      List.iter (fun s -> run s "BEGIN") sessions;
      List.iteri
        (fun w s ->
          run s
            (Printf.sprintf "UPDATE hot SET v = v + 1 WHERE id >= %d AND id < %d"
               (w * 16) ((w + 1) * 16)))
        sessions;
      List.iteri
        (fun w s ->
          match Db.exec s "COMMIT" with
          | _ -> ()
          | exception Db.Conflict m ->
              Alcotest.failf "disjoint writer %d conflicted: %s" w m)
        sessions;
      check_int "every range's update survived" (writers * 16)
        (int_of root "SELECT SUM(v) FROM hot");
      check_int "no rows duplicated or lost" (writers * 16)
        (int_of root "SELECT COUNT(*) FROM hot"))

(* The same hot table under real threads: each worker runs [rounds]
   BEGIN / UPDATE own range / COMMIT transactions.  Disjoint footprints
   must mean zero conflicts — any [Db.Conflict] fails the test — and
   every increment must survive the commit-path interleaving. *)
let test_disjoint_writers_threaded () =
  with_chunk_rows 16 (fun () ->
      let writers = 8 and rounds = 10 in
      let root = Db.create () in
      seed_hot root (writers * 16);
      let store = Db.share root in
      let failures = Atomic.make 0 in
      let worker w =
        let db = Db.session store in
        (try
           for _ = 1 to rounds do
             run db "BEGIN";
             run db
               (Printf.sprintf
                  "UPDATE hot SET v = v + 1 WHERE id >= %d AND id < %d" (w * 16)
                  ((w + 1) * 16));
             run db "COMMIT"
           done
         with Db.Conflict _ -> Atomic.incr failures);
        Db.close db
      in
      let threads = List.init writers (fun w -> Thread.create worker w) in
      List.iter Thread.join threads;
      check_int "zero conflicts on disjoint ranges" 0 (Atomic.get failures);
      check_int "every increment survived" (writers * 16 * rounds)
        (int_of root "SELECT SUM(v) FROM hot"))

(* Overlapping ranges keep first-committer-wins: exactly the later
   committer of a shared chunk loses. *)
let test_overlap_one_loser () =
  with_chunk_rows 16 (fun () ->
      let root = Db.create () in
      seed_hot root 64;
      let store = Db.share root in
      let s1 = Db.session store and s2 = Db.session store in
      run s1 "BEGIN";
      run s2 "BEGIN";
      run s1 "UPDATE hot SET v = 1 WHERE id >= 0 AND id < 32";
      run s2 "UPDATE hot SET v = 2 WHERE id >= 16 AND id < 48";
      run s1 "COMMIT";
      (match Db.exec s2 "COMMIT" with
      | _ -> Alcotest.fail "overlapping committer must conflict"
      | exception Db.Conflict _ -> ());
      check_int "winner's rows intact" 32 (int_of root "SELECT SUM(v) FROM hot"))

(* The footprint granularity is fixed per store at creation: changing
   [Table.default_chunk_rows] mid-flight must not make new trackers
   incommensurable with the chunk stamps the store already holds.  With
   the global shrunk from 16 to 4, rows 12..15 would map to chunk index
   3 — colliding with the stamp s1 left on the (size-16) chunk of rows
   48..63 — and a disjoint writer would conflict for no reason. *)
let test_chunk_size_fixed_at_creation () =
  with_chunk_rows 16 (fun () ->
      let root = Db.create () in
      seed_hot root 64;
      let store = Db.share root in
      let s1 = Db.session store and s2 = Db.session store in
      run s1 "BEGIN";
      run s2 "BEGIN";
      run s1 "UPDATE hot SET v = 1 WHERE id >= 48";
      run s1 "COMMIT";
      (* Mid-store granularity change: the store must keep using the
         size it captured at creation. *)
      Table.default_chunk_rows := 4;
      run s2 "UPDATE hot SET v = 2 WHERE id >= 12 AND id < 16";
      (match Db.exec s2 "COMMIT" with
      | _ -> ()
      | exception Db.Conflict m ->
          Alcotest.failf "disjoint writer conflicted after global change: %s" m);
      check_int "both updates survived" (16 + (4 * 2))
        (int_of root "SELECT SUM(v) FROM hot"))

(* Concurrent INSERTs into one table are append-append: both commit and
   both rows land (PR 6 aborted the second). *)
let test_concurrent_inserts_merge () =
  let root = Db.create () in
  run root "CREATE TABLE t (a INT NOT NULL)";
  let store = Db.share root in
  let s1 = Db.session store and s2 = Db.session store in
  run s1 "BEGIN";
  run s2 "BEGIN";
  run s1 "INSERT INTO t VALUES (1)";
  run s2 "INSERT INTO t VALUES (2)";
  run s1 "COMMIT";
  run s2 "COMMIT";
  check_int "both inserts survived" 2 (int_of root "SELECT COUNT(*) FROM t");
  check_int "values intact" 3 (int_of root "SELECT SUM(a) FROM t")

(* DDL still conflicts at name granularity with concurrent DML — in both
   commit orders. *)
let test_ddl_vs_dml_conflicts () =
  with_chunk_rows 16 (fun () ->
      let root = Db.create () in
      seed_hot root 64;
      let store = Db.share root in
      (* DML commits first; the DDL transaction must lose. *)
      let s1 = Db.session store and s2 = Db.session store in
      run s1 "BEGIN";
      run s2 "BEGIN";
      run s1 "UPDATE hot SET v = 1 WHERE id < 16";
      run s2 "CREATE INDEX ON hot (id)";
      run s1 "COMMIT";
      (match Db.exec s2 "COMMIT" with
      | _ -> Alcotest.fail "DDL after DML commit must conflict"
      | exception Db.Conflict _ -> ());
      (* DDL commits first; the DML transaction must lose. *)
      let s3 = Db.session store and s4 = Db.session store in
      run s3 "BEGIN";
      run s4 "BEGIN";
      run s3 "CREATE INDEX ON hot (v)";
      run s4 "UPDATE hot SET v = 2 WHERE id >= 32 AND id < 48";
      run s3 "COMMIT";
      match Db.exec s4 "COMMIT" with
      | _ -> Alcotest.fail "DML after DDL commit must conflict"
      | exception Db.Conflict _ -> ())

(* A mutation that matches no rows leaves an empty footprint: it must
   neither conflict with concurrent writers nor stamp the table against
   them (the write-set-pollution class of the phantom-entry bug). *)
let test_noop_mutation_no_conflict () =
  with_chunk_rows 16 (fun () ->
      let root = Db.create () in
      seed_hot root 32;
      let store = Db.share root in
      let s1 = Db.session store and s2 = Db.session store in
      run s1 "BEGIN";
      run s1 "UPDATE hot SET v = 99 WHERE id < 0";
      (* concurrent real writer commits while s1 is open *)
      run s2 "UPDATE hot SET v = 5 WHERE id < 16";
      run s1 "COMMIT";
      check_int "real writer's rows survived the no-op commit" 80
        (int_of root "SELECT SUM(v) FROM hot");
      (* and the reverse: a no-op commit must not stamp the name *)
      let s3 = Db.session store in
      run s3 "BEGIN";
      run s3 "UPDATE hot SET v = 7 WHERE id >= 16";
      run s1 "DELETE FROM hot WHERE id < 0";
      (match Db.exec s3 "COMMIT" with
      | _ -> ()
      | exception Db.Conflict m ->
          Alcotest.failf "no-op delete spuriously stamped the table: %s" m);
      check_int "both effects present" (80 + 7 * 16)
        (int_of root "SELECT SUM(v) FROM hot"))

(* Store-level regression (read-only DDL edge): a transaction whose only
   effect is [index_ddl] — empty write set — must still republish
   [index_defs] through the locked path rather than vanish down the
   read-only fast path. *)
let test_index_ddl_only_commit () =
  let module Store = Quill_txn.Store in
  let store = Store.create ~tables:[] ~index_defs:[] () in
  let txn = Store.begin_txn store in
  txn.Store.index_ddl <- true;
  let ts =
    Store.commit store txn ~lookup:(fun _ -> None)
      ~index_defs:(Some [ ("t", "k") ])
  in
  Alcotest.(check bool) "commit advanced the clock" true (ts > 0);
  let snap = Store.snapshot store in
  Alcotest.(check (list (pair string string)))
    "index defs republished"
    [ ("t", "k") ]
    snap.Store.snap_index_defs

(* --- durability --------------------------------------------------------- *)

let test_durable_roundtrip () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let root, _ = Db.open_durable dir in
  run root "CREATE TABLE t (a INT NOT NULL)";
  let store = Db.share root in
  let s = Db.session store in
  run s "BEGIN";
  run s "INSERT INTO t VALUES (1), (2)";
  run s "INSERT INTO t VALUES (3)";
  run s "COMMIT";
  (* An aborted transaction must leave nothing in the log's committed set. *)
  run s "BEGIN";
  run s "INSERT INTO t VALUES (99)";
  run s "ROLLBACK";
  run s "INSERT INTO t VALUES (4)";
  let want = int_of root "SELECT SUM(a) FROM t" in
  check_int "pre-close sum" 10 want;
  let db2, report = Db.open_durable dir in
  check_int "recovered sum" 10 (int_of db2 "SELECT SUM(a) FROM t");
  Alcotest.(check bool) "no torn tail" false report.Db.torn;
  rmrf dir

(* Concurrent WAL group commit: [writers] threads, each committing
   [txns] explicit transactions of two inserts into its own table (so no
   write-write conflicts — pure commit-protocol interleaving).  The
   recovered database must equal the live committed state: every
   committed transaction wholly present, nothing else, i.e. the replayed
   log is equivalent to a serial order of the committed transactions. *)
let test_concurrent_group_commit () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let root, _ = Db.open_durable dir in
  let writers = 4 and txns = 12 in
  for w = 0 to writers - 1 do
    run root (Printf.sprintf "CREATE TABLE w%d (seq INT NOT NULL, half INT NOT NULL)" w)
  done;
  let store = Db.share root in
  let worker w =
    let db = Db.session store in
    for i = 1 to txns do
      run db "BEGIN";
      run db (Printf.sprintf "INSERT INTO w%d VALUES (%d, 1)" w i);
      run db (Printf.sprintf "INSERT INTO w%d VALUES (%d, 2)" w i);
      run db "COMMIT"
    done;
    Db.close db
  in
  let threads = List.init writers (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  let live =
    List.init writers (fun w -> int_of root (Printf.sprintf "SELECT COUNT(*) FROM w%d" w))
  in
  List.iteri
    (fun w n -> check_int (Printf.sprintf "live rows w%d" w) (2 * txns) n)
    live;
  (* Reboot: replay the log written by four interleaved committers. *)
  let db2, report = Db.open_durable dir in
  Alcotest.(check bool) "log not torn" false report.Db.torn;
  for w = 0 to writers - 1 do
    check_int
      (Printf.sprintf "recovered rows w%d" w)
      (2 * txns)
      (int_of db2 (Printf.sprintf "SELECT COUNT(*) FROM w%d" w));
    (* Per-transaction atomicity: each seq has exactly both halves. *)
    check_int
      (Printf.sprintf "atomic txns w%d" w)
      txns
      (int_of db2
         (Printf.sprintf
            "SELECT COUNT(*) FROM (SELECT seq FROM w%d GROUP BY seq HAVING \
             COUNT(*) = 2 AND SUM(half) = 3) q"
            w))
  done;
  rmrf dir

(* Contended auto-commit: all writers hammer one table; the built-in
   conflict retry means most statements succeed, and every acknowledged
   statement must be present after recovery. *)
let test_contended_autocommit () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  let root, _ = Db.open_durable dir in
  run root "CREATE TABLE hits (w INT NOT NULL, i INT NOT NULL)";
  let store = Db.share root in
  let acked = Atomic.make 0 in
  let worker w =
    let db = Db.session store in
    for i = 1 to 20 do
      match Db.exec db (Printf.sprintf "INSERT INTO hits VALUES (%d, %d)" w i) with
      | _ -> Atomic.incr acked
      | exception Db.Conflict _ -> ()  (* retries exhausted: not acked *)
    done;
    Db.close db
  in
  let threads = List.init 4 (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  check_int "live rows = acked" (Atomic.get acked)
    (int_of root "SELECT COUNT(*) FROM hits");
  let db2, _ = Db.open_durable dir in
  check_int "recovered rows = acked" (Atomic.get acked)
    (int_of db2 "SELECT COUNT(*) FROM hits");
  rmrf dir

let () =
  Alcotest.run "txn"
    [
      ( "mvcc",
        [
          Alcotest.test_case "visibility" `Quick test_visibility;
          Alcotest.test_case "snapshot stability" `Quick test_snapshot_stability;
          Alcotest.test_case "first committer wins" `Quick
            test_conflict_first_committer_wins;
          Alcotest.test_case "rollback" `Quick test_rollback;
          Alcotest.test_case "txn control errors" `Quick test_txn_control_errors;
          Alcotest.test_case "DDL through txn" `Quick test_ddl_through_txn;
        ] );
      ( "row granularity",
        [
          Alcotest.test_case "disjoint writers all commit" `Quick
            test_disjoint_writers_all_commit;
          Alcotest.test_case "disjoint writers threaded" `Quick
            test_disjoint_writers_threaded;
          Alcotest.test_case "overlap: exactly one loser" `Quick
            test_overlap_one_loser;
          Alcotest.test_case "chunk size fixed at store creation" `Quick
            test_chunk_size_fixed_at_creation;
          Alcotest.test_case "concurrent inserts merge" `Quick
            test_concurrent_inserts_merge;
          Alcotest.test_case "DDL vs DML conflicts both orders" `Quick
            test_ddl_vs_dml_conflicts;
          Alcotest.test_case "no-op mutation: empty footprint" `Quick
            test_noop_mutation_no_conflict;
          Alcotest.test_case "index-DDL-only commit republishes" `Quick
            test_index_ddl_only_commit;
        ] );
      ( "durable",
        [
          Alcotest.test_case "txn frame round-trip" `Quick test_durable_roundtrip;
          Alcotest.test_case "concurrent group commit" `Quick
            test_concurrent_group_commit;
          Alcotest.test_case "contended auto-commit" `Quick
            test_contended_autocommit;
        ] );
    ]
