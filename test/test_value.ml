(* Tests for values, dates, schemas. *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema

let test_date_known () =
  Alcotest.(check int) "epoch" 0 (Value.date_of_ymd ~y:1970 ~m:1 ~d:1);
  Alcotest.(check int) "1970-01-02" 1 (Value.date_of_ymd ~y:1970 ~m:1 ~d:2);
  Alcotest.(check int) "1969-12-31" (-1) (Value.date_of_ymd ~y:1969 ~m:12 ~d:31);
  (* Leap year day. *)
  let feb29 = Value.date_of_ymd ~y:2000 ~m:2 ~d:29 in
  let mar1 = Value.date_of_ymd ~y:2000 ~m:3 ~d:1 in
  Alcotest.(check int) "leap" 1 (mar1 - feb29)

let prop_date_roundtrip =
  Tutil.qtest ~count:500 "ymd <-> days roundtrip"
    QCheck2.Gen.(int_range (-200_000) 200_000)
    (fun days ->
      let y, m, d = Value.ymd_of_date days in
      Value.date_of_ymd ~y ~m ~d = days && m >= 1 && m <= 12 && d >= 1 && d <= 31)

let test_date_string () =
  let d = Value.date_of_ymd ~y:1994 ~m:3 ~d:7 in
  Alcotest.(check string) "render" "1994-03-07" (Value.date_string d);
  Alcotest.(check (option int)) "parse" (Some d) (Value.parse_date "1994-03-07");
  Alcotest.(check (option int)) "bad month" None (Value.parse_date "1994-13-07");
  Alcotest.(check (option int)) "garbage" None (Value.parse_date "hello")

let test_date_calendar_validation () =
  (* Regression: parse_date used to accept any day 1..31 for any month,
     so impossible dates like 2024-02-31 slipped into tables. *)
  let ok s = Value.parse_date s <> None in
  Alcotest.(check bool) "2024-02-31 rejected" false (ok "2024-02-31");
  Alcotest.(check bool) "2023-02-29 rejected" false (ok "2023-02-29");
  Alcotest.(check bool) "2024-04-31 rejected" false (ok "2024-04-31");
  Alcotest.(check bool) "1900-02-29 rejected (century)" false (ok "1900-02-29");
  Alcotest.(check bool) "2024-02-29 accepted (leap)" true (ok "2024-02-29");
  Alcotest.(check bool) "2000-02-29 accepted (400-year)" true (ok "2000-02-29");
  Alcotest.(check bool) "2024-01-31 accepted" true (ok "2024-01-31");
  Alcotest.(check bool) "2024-11-30 accepted" true (ok "2024-11-30");
  (* Accepted dates roundtrip through the day-number encoding. *)
  match Value.parse_date "2024-02-29" with
  | Some d -> Alcotest.(check string) "roundtrip" "2024-02-29" (Value.date_string d)
  | None -> Alcotest.fail "2024-02-29 should parse"

let prop_parse_date_matches_calendar =
  Tutil.qtest ~count:500 "parse_date accepts exactly the real calendar"
    QCheck2.Gen.(triple (int_range 1850 2150) (int_range 1 12) (int_range 1 31))
    (fun (y, m, d) ->
      let parsed = Value.parse_date (Printf.sprintf "%04d-%02d-%02d" y m d) in
      match parsed with
      | Some days ->
          (* Everything accepted must roundtrip to the same y/m/d. *)
          Value.ymd_of_date days = (y, m, d)
      | None ->
          (* Everything rejected must really not exist: no day number
             renders to this y/m/d. *)
          Value.date_of_ymd ~y ~m ~d |> fun days ->
          Value.ymd_of_date days <> (y, m, d))

let test_value_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "float" "2.5" (Value.to_string (Value.Float 2.5));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true))

let test_value_parse () =
  Alcotest.(check bool) "int" true (Value.parse Value.Int_t "17" = Some (Value.Int 17));
  Alcotest.(check bool) "empty is null" true (Value.parse Value.Int_t "" = Some Value.Null);
  Alcotest.(check bool) "bad int" true (Value.parse Value.Int_t "x" = None);
  Alcotest.(check bool) "bool t" true (Value.parse Value.Bool_t "T" = Some (Value.Bool true));
  Alcotest.(check bool) "float" true (Value.parse Value.Float_t "2.5" = Some (Value.Float 2.5))

let test_compare_numeric_coercion () =
  Alcotest.(check int) "int vs float eq" 0 (Value.compare (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "int < float" true (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  Alcotest.(check bool) "null first" true (Value.compare Value.Null (Value.Int (-999)) < 0)

let test_compare_huge_int_float () =
  (* Regression: Int/Float comparison went through float_of_int, which
     rounds above 2^53 — max_int compared equal to 2^62 as a float. *)
  let two62 = 4611686018427387904.0 (* 2^62 = max_int + 1, exact as float *) in
  Alcotest.(check int) "max_int < 2^62" (-1)
    (Value.compare (Value.Int max_int) (Value.Float two62));
  Alcotest.(check int) "2^62 > max_int" 1
    (Value.compare (Value.Float two62) (Value.Int max_int));
  let p53 = 1 lsl 53 in
  Alcotest.(check int) "2^53+1 > 2^53" 1
    (Value.compare (Value.Int (p53 + 1)) (Value.Float (Float.of_int p53)));
  Alcotest.(check int) "2^53 = 2^53" 0
    (Value.compare (Value.Int p53) (Value.Float (Float.of_int p53)));
  Alcotest.(check int) "-(2^53)-1 < -(2^53)" (-1)
    (Value.compare (Value.Int (-p53 - 1)) (Value.Float (Float.of_int (-p53))));
  Alcotest.(check int) "min_int = min_int as float" 0
    (Value.compare (Value.Int min_int) (Value.Float (Float.of_int min_int)));
  Alcotest.(check int) "fraction just above" (-1)
    (Value.compare (Value.Int 3) (Value.Float 3.5));
  Alcotest.(check int) "huge negative float" 1
    (Value.compare (Value.Int min_int) (Value.Float (-1e300)));
  Alcotest.(check int) "huge positive float" (-1)
    (Value.compare (Value.Int max_int) (Value.Float 1e300));
  (* Antisymmetry over the interesting boundary pairs. *)
  let ints = [ min_int; min_int + 1; -p53 - 1; -p53; -1; 0; 1; p53; p53 + 1; max_int - 1; max_int ] in
  let floats =
    [ -1e300; Float.of_int min_int; -.Float.of_int p53; -1.5; 0.0; 2.5;
      Float.of_int p53; two62; 1e300 ]
  in
  List.iter
    (fun i ->
      List.iter
        (fun f ->
          let a = Value.compare (Value.Int i) (Value.Float f) in
          let b = Value.compare (Value.Float f) (Value.Int i) in
          if compare a 0 <> -compare b 0 then
            Alcotest.failf "not antisymmetric at Int %d vs Float %h" i f;
          (* Equality still implies equal hashes (hash-join correctness). *)
          if a = 0 && Value.hash (Value.Int i) <> Value.hash (Value.Float f) then
            Alcotest.failf "equal but hash differs at Int %d vs Float %h" i f)
        floats)
    ints

let prop_compare_total_order =
  Tutil.qtest ~count:300 "compare is a consistent total order"
    QCheck2.Gen.(
      let v = Tutil.value_of_dtype ~null_weight:20 Quill_storage.Value.Int_t in
      triple v v v)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let prop_hash_consistent =
  Tutil.qtest ~count:300 "equal values hash equally"
    QCheck2.Gen.(
      let* dt = Tutil.dtype_gen in
      pair (Tutil.value_of_dtype dt) (Tutil.value_of_dtype dt))
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let test_hash_int_float_collide () =
  (* Int 5 and Float 5.0 compare equal, so they must hash equal. *)
  Alcotest.(check int) "5 = 5.0" (Value.hash (Value.Int 5)) (Value.hash (Value.Float 5.0))

let test_schema_find () =
  let s =
    Schema.create
      [ Schema.col "t.a" Value.Int_t; Schema.col "t.b" Value.Str_t;
        Schema.col "u.a" Value.Int_t ]
  in
  (match Schema.find s "a" with
  | Error e ->
      Alcotest.(check bool) "ambiguous" true
        (String.length e >= 9 && String.sub e 0 9 = "ambiguous")
  | Ok _ -> Alcotest.fail "expected ambiguity");
  Alcotest.(check int) "qualified" 0 (Schema.find_exn s "t.a");
  Alcotest.(check int) "unique base" 1 (Schema.find_exn s "b");
  (match Schema.find s "zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown")

let test_schema_qualify_concat () =
  let s = Schema.create [ Schema.col "x" Value.Int_t ] in
  let q = Schema.qualify "t" s in
  Alcotest.(check string) "qualified name" "t.x" (Schema.column q 0).Schema.name;
  let c = Schema.concat q (Schema.qualify "u" s) in
  Alcotest.(check int) "arity" 2 (Schema.arity c);
  Alcotest.(check int) "second" 1 (Schema.find_exn c "u.x")

let test_schema_dup_rejected () =
  Alcotest.check_raises "duplicate columns"
    (Invalid_argument "Schema.create: duplicate column \"x\"") (fun () ->
      ignore (Schema.create [ Schema.col "x" Value.Int_t; Schema.col "x" Value.Str_t ]))

let () =
  Alcotest.run "value"
    [
      ( "dates",
        [
          Alcotest.test_case "known" `Quick test_date_known;
          prop_date_roundtrip;
          Alcotest.test_case "strings" `Quick test_date_string;
          Alcotest.test_case "calendar validation" `Quick test_date_calendar_validation;
          prop_parse_date_matches_calendar;
        ] );
      ( "values",
        [
          Alcotest.test_case "to_string" `Quick test_value_to_string;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "coercion" `Quick test_compare_numeric_coercion;
          Alcotest.test_case "huge int/float" `Quick test_compare_huge_int_float;
          prop_compare_total_order;
          prop_hash_consistent;
          Alcotest.test_case "int/float hash" `Quick test_hash_int_float_collide;
        ] );
      ( "schema",
        [
          Alcotest.test_case "find" `Quick test_schema_find;
          Alcotest.test_case "qualify/concat" `Quick test_schema_qualify_concat;
          Alcotest.test_case "duplicates" `Quick test_schema_dup_rejected;
        ] );
    ]
