(* Differential battery for the typed-batch + selection-vector data plane
   (E18): the typed path, the boxed ablation ([Vector.enable_typed :=
   false]) and the Volcano reference must agree byte-for-byte, serial and
   morsel-parallel, on TPC-H analogs, hand-picked edge cases and fuzzed
   queries — plus unit regressions for the pieces the data plane leans on
   (bulk validity AND, memoized dictionary decodes, allocation-free
   constant vectors, kernel/fallback dispatch counters). *)

module Value = Quill_storage.Value
module Schema = Quill_storage.Schema
module Table = Quill_storage.Table
module Catalog = Quill_storage.Catalog
module Column = Quill_storage.Column
module Bitset = Quill_util.Bitset
module Bexpr = Quill_plan.Bexpr
module Vector = Quill_exec.Vector
module Profile = Quill_exec.Profile
module Metrics = Quill_obs.Metrics
module Tpch = Quill_workload.Tpch

let with_typed flag f =
  let prev = !Vector.enable_typed in
  Vector.enable_typed := flag;
  Fun.protect ~finally:(fun () -> Vector.enable_typed := prev) f

let rows_of db ?(engine = Quill.Db.Vectorized) sql =
  Tutil.table_rows (Quill.Db.query db ~engine sql)

let dump rows =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat "|" (Array.to_list (Array.map Value.to_string row)))
          rows))

(* Order-insensitive byte-exact serialization: all engines must produce
   the same multiset down to the last character. *)
let sorted_dump rows =
  let l = Array.copy rows in
  Array.sort compare l;
  dump l

let check_triple db name sql =
  let volcano = sorted_dump (rows_of db ~engine:Quill.Db.Volcano sql) in
  let typed = with_typed true (fun () -> sorted_dump (rows_of db sql)) in
  let boxed = with_typed false (fun () -> sorted_dump (rows_of db sql)) in
  Alcotest.(check string) (name ^ ": typed vs volcano") volcano typed;
  Alcotest.(check string) (name ^ ": boxed vs typed") typed boxed

(* --- TPC-H analogs ------------------------------------------------------ *)

let tpch_db =
  lazy
    (let db = Quill.Db.create () in
     Tpch.load (Quill.Db.catalog db) ~sf:0.002 ~seed:7;
     db)

let test_tpch_differential () =
  let db = Lazy.force tpch_db in
  List.iter (fun (name, sql) -> check_triple db name sql) Tpch.queries

(* --- Edge cases --------------------------------------------------------- *)

(* e(x, nul, tag): x is a dense int key, nul is entirely NULL, tag cycles
   through 4 short strings with some NULLs.  Built twice with identical
   data: "ed" dictionary-encodes tag, "ep" keeps plain strings (the
   columnar projection is forced inside the toggled region so the layout
   really differs). *)
let edge_db =
  lazy
    (let db = Quill.Db.create () in
     let tags = [| "alpha"; "beta"; "gamma"; "delta" |] in
     let mk name =
       let t =
         Table.create ~name
           (Schema.create
              [ Schema.col ~nullable:false "x" Value.Int_t;
                Schema.col "nul" Value.Int_t;
                Schema.col "tag" Value.Str_t ])
       in
       for i = 0 to 199 do
         Table.insert t
           [| Value.Int i; Value.Null;
              (if i mod 11 = 0 then Value.Null else Value.Str tags.(i mod 4)) |]
       done;
       Catalog.add (Quill.Db.catalog db) t;
       t
     in
     ignore (Table.columnar (mk "ed"));
     let prev = !Column.enable_dict in
     Column.enable_dict := false;
     Fun.protect
       ~finally:(fun () -> Column.enable_dict := prev)
       (fun () -> ignore (Table.columnar (mk "ep")));
     (* g(x, y): y is never NULL and sometimes zero, for the guarded
        division cases. *)
     let g =
       Table.create ~name:"g"
         (Schema.create
            [ Schema.col ~nullable:false "x" Value.Int_t;
              Schema.col ~nullable:false "y" Value.Int_t ])
     in
     for i = 0 to 99 do
       Table.insert g [| Value.Int (i * 3); Value.Int (i mod 5) |]
     done;
     Catalog.add (Quill.Db.catalog db) g;
     db)

let test_edge_cases () =
  let db = Lazy.force edge_db in
  (* Sanity: the two string layouts really differ. *)
  let col name =
    Table.column (Option.get (Catalog.find (Quill.Db.catalog db) name)) 2
  in
  (match col "ed" with
  | Column.Dict _ -> ()
  | _ -> Alcotest.fail "ed.tag should be dictionary-encoded");
  (match col "ep" with
  | Column.Strs _ -> ()
  | _ -> Alcotest.fail "ep.tag should be plain strings");
  List.iter
    (fun sql -> check_triple db sql sql)
    [ (* all-NULL column through filters and aggregates *)
      "SELECT count(nul), count(*), sum(nul) FROM ed";
      "SELECT x FROM ed WHERE nul > 5";
      "SELECT x FROM ed WHERE nul IS NULL AND x < 7";
      (* empty selections feeding downstream operators *)
      "SELECT sum(x), count(*) FROM ed WHERE x < 0";
      "SELECT tag, count(*) FROM ed WHERE x > 1000 GROUP BY tag";
      (* division kept safe by an AND guard *)
      "SELECT x FROM g WHERE y <> 0 AND x / y > 40";
      "SELECT x / y AS q FROM g WHERE y <> 0";
      "SELECT x FROM g WHERE y = 0 OR x / y > 40" ];
  (* dict-coded and plain string columns must answer identically. *)
  List.iter
    (fun shape ->
      let q t = Printf.sprintf shape t in
      check_triple db (q "ed") (q "ed");
      check_triple db (q "ep") (q "ep");
      let d = with_typed true (fun () -> sorted_dump (rows_of db (q "ed"))) in
      let p = with_typed true (fun () -> sorted_dump (rows_of db (q "ep"))) in
      Alcotest.(check string) (q "ed" ^ ": dict vs plain") d p)
    [ "SELECT x FROM %s WHERE tag LIKE 'b%%'";
      "SELECT x FROM %s WHERE tag = 'beta'";
      "SELECT x FROM %s WHERE tag < 'beta'";
      "SELECT x FROM %s WHERE tag IN ('alpha', 'gamma')";
      "SELECT x FROM %s WHERE tag IS NOT NULL AND tag >= 'delta'";
      "SELECT tag, count(*) AS n FROM %s GROUP BY tag" ]

(* --- Parallel agreement ------------------------------------------------- *)

let test_parallel_agreement () =
  let db = Lazy.force tpch_db in
  Fun.protect
    ~finally:(fun () -> Quill.Db.set_parallelism db 1)
    (fun () ->
      Quill_parallel.Morsel.with_size 16 (fun () ->
          List.iter
            (fun w ->
              Quill.Db.set_parallelism db w;
              List.iter
                (fun (name, sql) ->
                  check_triple db (Printf.sprintf "%s (par=%d)" name w) sql)
                Tpch.queries)
            [ 2; 3 ]))

(* --- Profiled row counts ------------------------------------------------ *)

(* EXPLAIN ANALYZE feeds off the profile, so per-operator rows_out must
   not depend on the data plane: compare the whole profile vector typed
   vs boxed, and the root against the materialized result. *)
let test_profile_rows () =
  let db = Lazy.force tpch_db in
  List.iter
    (fun (name, sql) ->
      let plan = Quill.Db.plan db sql in
      let nops = Quill_optimizer.Physical.operator_count plan in
      let run_mode flag =
        with_typed flag (fun () ->
            let profile = Profile.create plan in
            let ctx = Quill_exec.Exec_ctx.create ~profile (Quill.Db.catalog db) in
            let rows = Vector.run ctx plan in
            Alcotest.(check int)
              (Printf.sprintf "%s root rows (typed=%b)" name flag)
              (Array.length rows) (Profile.rows profile 0);
            Array.init nops (Profile.rows profile))
      in
      Alcotest.(check (array int))
        (name ^ ": per-operator rows typed vs boxed")
        (run_mode true) (run_mode false))
    Tpch.queries

(* --- Dispatch counters -------------------------------------------------- *)

let test_dispatch_counters () =
  let db = Lazy.force edge_db in
  let kernel = Metrics.counter "quill.exec.kernel_dispatches" in
  let fallback = Metrics.counter "quill.exec.fallback_dispatches" in
  let sql = "SELECT x + x FROM g WHERE x > 30" in
  let k0 = Metrics.value kernel in
  with_typed true (fun () -> ignore (rows_of db sql));
  Alcotest.(check bool) "typed run counts kernel dispatches" true
    (Metrics.value kernel > k0);
  let f0 = Metrics.value fallback in
  with_typed false (fun () -> ignore (rows_of db sql));
  Alcotest.(check bool) "boxed run counts fallback dispatches" true
    (Metrics.value fallback > f0)

(* --- Memoized dictionary decode ---------------------------------------- *)

let test_strs_memoized () =
  let vs = Array.init 128 (fun i -> Value.Str (if i mod 3 = 0 then "aa" else "bb")) in
  let c = Column.of_values Value.Str_t vs in
  (match c with
  | Column.Dict _ -> ()
  | _ -> Alcotest.fail "expected a dictionary-encoded column");
  let a = Column.strs c in
  (* O(1) regression: repeated decodes must return the SAME array, not a
     fresh per-call copy. *)
  Alcotest.(check bool) "decode is memoized (physical equality)" true
    (a == Column.strs c);
  Alcotest.(check string) "decode is correct" "aa" a.(0);
  Alcotest.(check string) "decode is correct" "bb" a.(1)

(* --- Constants are constant vectors ------------------------------------ *)

let test_const_vectors () =
  let db = Quill.Db.create () in
  let ctx =
    Quill_exec.Exec_ctx.create ~params:[| Value.Int 9 |] (Quill.Db.catalog db)
  in
  let b = { Vector.vecs = [||]; len = 512; sel = None } in
  let expect_const name e =
    List.iter
      (fun flag ->
        with_typed flag (fun () ->
            match Vector.eval_vec ctx b e with
            | Vector.Const _ -> ()
            | _ ->
                Alcotest.failf "%s (typed=%b): expected a constant vector, got a materialized one"
                  name flag))
      [ true; false ]
  in
  expect_const "Lit" { Bexpr.node = Bexpr.Lit (Value.Int 7); dtype = Value.Int_t };
  expect_const "Param" { Bexpr.node = Bexpr.Param 0; dtype = Value.Int_t }

(* --- Bitset.land_range -------------------------------------------------- *)

let test_land_range () =
  List.iter
    (fun (n, src_n, pos) ->
      let mk len f =
        let t = Bitset.create len in
        for i = 0 to len - 1 do
          if f i then Bitset.set t i
        done;
        t
      in
      let src = mk src_n (fun i -> i mod 3 <> 0) in
      let into = mk n (fun i -> i mod 2 = 0) in
      Bitset.land_range ~into src ~src_pos:pos;
      for i = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "bit %d (n=%d pos=%d)" i n pos)
          (i mod 2 = 0 && (pos + i) mod 3 <> 0)
          (Bitset.get into i)
      done)
    (* aligned, small shifts, word-boundary shifts, and windows ending at
       the last source word (the hi-word-out-of-range case) *)
    [ (64, 256, 0); (50, 200, 13); (63, 300, 64); (65, 300, 127);
      (1, 70, 69); (10, 100, 90) ]

(* --- Fuzz: the boxed fallback is byte-identical ------------------------- *)

let rdb = lazy (Tutil.random_db ~seed:20260805 ~rows:160)

open QCheck2.Gen

let pred_gen =
  let base =
    oneofl
      [ "r.k > 10"; "r.k <= 5"; "r.id >= 40"; "r.id + r.k < 60"; "r.v > 50.0";
        "r.tag LIKE 'a%'"; "r.tag = 'beta'"; "r.tag IN ('alpha', 'gamma')";
        "r.k IS NULL"; "r.v IS NOT NULL"; "r.dt >= DATE '1994-09-01'";
        "(r.k <> 0 AND r.id / r.k > 3)" ]
  in
  let rec go depth =
    if depth = 0 then base
    else
      oneof
        [ base;
          (let* a = go (depth - 1) in
           let* b = go (depth - 1) in
           let* op = oneofl [ "AND"; "OR" ] in
           pure (Printf.sprintf "(%s %s %s)" a op b)) ]
  in
  go 2

let query_gen =
  let* where = oneof [ pure ""; map (Printf.sprintf " WHERE %s") pred_gen ] in
  let* shape = int_range 0 2 in
  pure
    (match shape with
    | 0 -> Printf.sprintf "SELECT r.id, r.k, r.v, r.tag FROM r%s" where
    | 1 ->
        Printf.sprintf "SELECT r.k, count(*) AS n, sum(r.id) AS s FROM r%s GROUP BY r.k"
          where
    | _ ->
        Printf.sprintf "SELECT r.id, r.id + coalesce(r.k, 0) AS e FROM r%s LIMIT 25"
          where)

let prop_boxed_identical =
  (* Serial execution is deterministic and both modes run the same
     operator order, so the comparison is unsorted: byte-identical
     output, not just the same multiset. *)
  Tutil.qtest ~count:250 "fuzz: boxed fallback is byte-identical to typed"
    query_gen
    (fun sql ->
      let db = Lazy.force rdb in
      let typed = with_typed true (fun () -> dump (rows_of db sql)) in
      let boxed = with_typed false (fun () -> dump (rows_of db sql)) in
      if typed <> boxed then
        QCheck2.Test.fail_reportf "typed/boxed differ on %s\ntyped:\n%s\nboxed:\n%s"
          sql typed boxed
      else true)

let () =
  Alcotest.run "vector_typed"
    [ ( "differential",
        [ Alcotest.test_case "tpch analogs: typed = boxed = volcano" `Quick
            test_tpch_differential;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "parallel agreement" `Quick test_parallel_agreement;
          Alcotest.test_case "profiled row counts" `Quick test_profile_rows ] );
      ( "machinery",
        [ Alcotest.test_case "dispatch counters" `Quick test_dispatch_counters;
          Alcotest.test_case "dict decode memoized" `Quick test_strs_memoized;
          Alcotest.test_case "constants stay constant vectors" `Quick
            test_const_vectors;
          Alcotest.test_case "Bitset.land_range" `Quick test_land_range ] );
      ("fuzz", [ prop_boxed_identical ]) ]
