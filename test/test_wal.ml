(* Units for the durability building blocks: CRC32, the fault-injectable
   filesystem, WAL framing / group commit / replay, and the checksummed
   snapshot + generation protocol.  Crash-matrix and fuzz tests over the
   whole recovery path live in test_recovery.ml. *)

module Sim_fs = Quill_storage.Sim_fs
module Wal = Quill_storage.Wal
module Snapshot = Quill_storage.Snapshot
module Hashing = Quill_util.Hashing

let tmppath () =
  let p = Filename.temp_file "quill_wal" ".log" in
  Sys.remove p;
  p

let tmpdir () =
  let p = Filename.temp_file "quill_snap" "" in
  Sys.remove p;
  p

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else Sys.remove path

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* An independent mirror of the on-disk frame encoding, so a format
   drift in wal.ml fails these tests instead of round-tripping. *)
let frame payload =
  let b = Buffer.create 32 in
  let u32 v =
    Buffer.add_char b (Char.chr (v land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))
  in
  u32 (String.length payload);
  u32 (Hashing.crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let wal_header = "QWAL1\n"

(* Render a replay entry for comparison: statements as their SQL text,
   physical patches as "patch:<table>=<data>". *)
let entry_repr = function
  | Wal.Stmt sql -> sql
  | Wal.Patch { table; data } -> Printf.sprintf "patch:%s=%s" table data

let check_replay msg ~stmts ~dropped ~torn (r : Wal.replay) =
  Alcotest.(check (list string))
    (msg ^ ": statements") stmts
    (List.map entry_repr r.Wal.entries);
  Alcotest.(check int) (msg ^ ": dropped") dropped r.Wal.dropped;
  Alcotest.(check bool) (msg ^ ": torn") torn r.Wal.torn

(* --- CRC32 -------------------------------------------------------------- *)

let test_crc32 () =
  (* The standard IEEE 802.3 check value. *)
  Alcotest.(check int) "check vector" 0xcbf43926 (Hashing.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Hashing.crc32 "");
  (* Slicing matches taking a substring. *)
  let s = "xx123456789yy" in
  Alcotest.(check int) "slice" 0xcbf43926 (Hashing.crc32 ~pos:2 ~len:9 s);
  (* Sensitive to every byte. *)
  Alcotest.(check bool) "bit flip" false
    (Hashing.crc32 "hello world" = Hashing.crc32 "hello worle")

(* --- Sim_fs faults ------------------------------------------------------ *)

let test_sim_fs_op_crash () =
  Sim_fs.reset ();
  let path = tmppath () in
  Sim_fs.crash_after_ops 0;
  Alcotest.(check bool) "next op crashes" true
    (try
       ignore (Sim_fs.create path);
       false
     with Sim_fs.Crash _ -> true);
  Alcotest.(check bool) "machine stays down" true
    (try
       Sim_fs.remove path;
       false
     with Sim_fs.Crash _ -> true);
  Alcotest.(check bool) "crashed flag" true (Sim_fs.crashed ());
  Sim_fs.reset ();
  let f = Sim_fs.create path in
  Sim_fs.write f "ok";
  Sim_fs.close f;
  Alcotest.(check string) "works after reset" "ok" (read_raw path);
  Alcotest.(check int) "bytes counted" 2 (Sim_fs.bytes_written ());
  Sys.remove path

let test_sim_fs_torn_write () =
  Sim_fs.reset ();
  let path = tmppath () in
  let f = Sim_fs.create path in
  Sim_fs.crash_after_bytes 4;
  Alcotest.(check bool) "write crashes" true
    (try
       Sim_fs.write f "abcdefgh";
       false
     with Sim_fs.Crash _ -> true);
  (* close is still allowed so finalizers never mask the crash *)
  Sim_fs.close f;
  Alcotest.(check string) "prefix persisted" "abcd" (read_raw path);
  Sim_fs.reset ();
  Sys.remove path

let test_sim_fs_fsync_failure () =
  Sim_fs.reset ();
  let path = tmppath () in
  let f = Sim_fs.create path in
  Sim_fs.write f "x";
  Sim_fs.fail_fsync true;
  Alcotest.(check bool) "fsync fails" true
    (try
       Sim_fs.fsync f;
       false
     with Sim_fs.Io_error _ -> true);
  Alcotest.(check bool) "machine stays up" false (Sim_fs.crashed ());
  Sim_fs.fail_fsync false;
  Sim_fs.fsync f;
  Sim_fs.close f;
  Sim_fs.reset ();
  Sys.remove path

(* --- WAL write path ----------------------------------------------------- *)

let test_wal_roundtrip () =
  Sim_fs.reset ();
  let path = tmppath () in
  let w = Wal.create path in
  Wal.log_statement w "INSERT INTO t VALUES (1)";
  Wal.commit w;
  (* group commit: two statements, one marker *)
  Wal.log_statement w "INSERT INTO t VALUES (2)";
  Wal.log_statement w "INSERT INTO t VALUES (3)";
  Wal.commit w;
  Alcotest.(check int) "appended" 3 (Wal.appended w);
  Wal.close w;
  check_replay "roundtrip"
    ~stmts:
      [ "INSERT INTO t VALUES (1)"; "INSERT INTO t VALUES (2)";
        "INSERT INTO t VALUES (3)" ]
    ~dropped:0 ~torn:false (Wal.replay path);
  (* the file matches the documented layout byte for byte *)
  Alcotest.(check string) "layout"
    (wal_header
    ^ frame "SINSERT INTO t VALUES (1)"
    ^ frame "C"
    ^ frame "SINSERT INTO t VALUES (2)"
    ^ frame "SINSERT INTO t VALUES (3)"
    ^ frame "C")
    (read_raw path);
  Sys.remove path

let test_wal_patch_roundtrip () =
  Sim_fs.reset ();
  let path = tmppath () in
  let w = Wal.create path in
  (* A merged commit's group: begin, one physical patch, commit. *)
  Wal.log_txn_begin w ~txn:7;
  Wal.log_txn_patch w ~txn:7 ~table:"hot" "0,1,42\n+,2,0\n";
  Wal.log_txn_commit w ~txn:7;
  Wal.flush w;
  (* A second patch group revoked by an abort frame after its commit
     marker (the failed-fsync sequence): it must not replay. *)
  Wal.log_txn_begin w ~txn:8;
  Wal.log_txn_patch w ~txn:8 ~table:"hot" "1,9,9\n";
  Wal.log_txn_commit w ~txn:8;
  Wal.log_txn_abort w ~txn:8;
  Wal.flush w;
  Wal.close w;
  check_replay "patch" ~stmts:[ "patch:hot=0,1,42\n+,2,0\n" ] ~dropped:1
    ~torn:false (Wal.replay path);
  (* the file matches the documented layout byte for byte *)
  Alcotest.(check string) "layout"
    (wal_header ^ frame "B7"
    ^ frame "U7:hot\n0,1,42\n+,2,0\n"
    ^ frame "T7" ^ frame "B8"
    ^ frame "U8:hot\n1,9,9\n"
    ^ frame "T8" ^ frame "A8")
    (read_raw path);
  Sys.remove path

let test_wal_rollback_and_close_discard () =
  Sim_fs.reset ();
  let path = tmppath () in
  let w = Wal.create path in
  Wal.log_statement w "BAD";
  Wal.rollback w;
  Wal.log_statement w "GOOD";
  Wal.commit w;
  (* staged but uncommitted at close: never reaches the file *)
  Wal.log_statement w "UNCOMMITTED";
  Wal.close w;
  check_replay "rollback" ~stmts:[ "GOOD" ] ~dropped:0 ~torn:false (Wal.replay path);
  Sys.remove path

let test_wal_empty_commit_is_noop () =
  Sim_fs.reset ();
  let path = tmppath () in
  let w = Wal.create path in
  Wal.commit w;
  Wal.close w;
  Alcotest.(check string) "header only" wal_header (read_raw path);
  check_replay "empty" ~stmts:[] ~dropped:0 ~torn:false (Wal.replay path);
  Sys.remove path

let test_wal_sync_batching () =
  (* Count fsyncs through the op counter: each single-statement commit is
     one write, plus one fsync when the policy says so. *)
  Sim_fs.reset ();
  let path = tmppath () in
  let commits w n =
    let before = Sim_fs.ops_performed () in
    for i = 1 to n do
      Wal.log_statement w (Printf.sprintf "S%d" i);
      Wal.commit w
    done;
    Sim_fs.ops_performed () - before
  in
  let w = Wal.create ~policy:Wal.Never path in
  Alcotest.(check int) "never: 4 writes, 0 fsyncs" 4 (commits w 4);
  Wal.set_policy w Wal.On_commit;
  Alcotest.(check int) "commit: 4 writes, 4 fsyncs" 8 (commits w 4);
  Wal.set_policy w (Wal.Every 2);
  Alcotest.(check int) "every-2: 4 writes, 2 fsyncs" 6 (commits w 4);
  Wal.close w;
  Sys.remove path

let test_wal_policy_parse () =
  Alcotest.(check bool) "never" true (Wal.policy_of_string "never" = Some Wal.Never);
  Alcotest.(check bool) "commit" true
    (Wal.policy_of_string " Commit " = Some Wal.On_commit);
  Alcotest.(check bool) "every 3" true
    (Wal.policy_of_string "every 3" = Some (Wal.Every 3));
  Alcotest.(check bool) "every 0" true (Wal.policy_of_string "every 0" = None);
  Alcotest.(check bool) "garbage" true (Wal.policy_of_string "sometimes" = None);
  Alcotest.(check string) "name" "every-3" (Wal.policy_name (Wal.Every 3))

(* --- WAL replay on damaged files ---------------------------------------- *)

let test_replay_missing_file () =
  check_replay "missing" ~stmts:[] ~dropped:0 ~torn:false
    (Wal.replay "/nonexistent/quill-wal")

let test_replay_bad_header () =
  let path = tmppath () in
  write_raw path "NOT A WAL";
  check_replay "bad header" ~stmts:[] ~dropped:0 ~torn:true (Wal.replay path);
  Sys.remove path

let test_replay_uncommitted_tail () =
  (* A statement frame with no commit marker: appended but never
     acknowledged, so replay must drop it (cleanly, not as torn). *)
  let path = tmppath () in
  write_raw path (wal_header ^ frame "Sone" ^ frame "C" ^ frame "Stwo");
  check_replay "uncommitted tail" ~stmts:[ "one" ] ~dropped:1 ~torn:false
    (Wal.replay path);
  Sys.remove path

let test_replay_torn_tail () =
  (* A power cut mid-frame leaves trailing garbage; the committed prefix
     before it must survive. *)
  let path = tmppath () in
  let whole = frame "Stwo" in
  List.iter
    (fun cut ->
      write_raw path
        (wal_header ^ frame "Sone" ^ frame "C" ^ String.sub whole 0 cut);
      check_replay
        (Printf.sprintf "torn at %d" cut)
        ~stmts:[ "one" ] ~dropped:0 ~torn:true (Wal.replay path))
    [ 1; 7; 9; String.length whole - 1 ];
  Sys.remove path

let test_replay_corrupt_record () =
  (* Bit rot inside a committed record: replay stops at the damage and
     keeps only the clean prefix. *)
  let path = tmppath () in
  let good = wal_header ^ frame "Sone" ^ frame "C" ^ frame "Stwo" ^ frame "C" in
  let bad = Bytes.of_string good in
  let flip = String.length wal_header + String.length (frame "Sone") + String.length (frame "C") + 9 in
  Bytes.set bad flip (Char.chr (Char.code (Bytes.get bad flip) lxor 1));
  write_raw path (Bytes.to_string bad);
  let r = Wal.replay path in
  check_replay "corrupt" ~stmts:[ "one" ] ~dropped:0 ~torn:true r;
  Alcotest.(check bool) "detail names checksum" true
    (match r.Wal.detail with
    | Some d ->
        let nh = String.length d and needle = "checksum" in
        let nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub d i nn = needle || go (i + 1)) in
        go 0
    | None -> false);
  Sys.remove path

let test_torn_commit_write_drops_statement () =
  (* The crash the group-commit protocol is designed for: power cut after
     the statement frame but before the commit marker of the same write.
     Recovery sees an uncommitted statement and drops it — the client was
     never acknowledged. *)
  Sim_fs.reset ();
  let path = tmppath () in
  let w = Wal.create path in
  Wal.log_statement w "x";
  (* the commit write is [frame "Sx"][frame "C"]; cut 3 bytes into the
     commit marker's header *)
  Sim_fs.crash_after_bytes (String.length (frame "Sx") + 3);
  Alcotest.(check bool) "commit crashes" true
    (try
       Wal.commit w;
       false
     with Sim_fs.Crash _ -> true);
  Wal.close w;
  Sim_fs.reset ();
  check_replay "torn commit" ~stmts:[] ~dropped:1 ~torn:true (Wal.replay path);
  Sys.remove path

(* --- Snapshots and generations ------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_snapshot_verify () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  Snapshot.write ~dir [ ("a.csv", "k,v\n1,one\n"); ("_manifest.sql", "CREATE TABLE t;\n") ];
  Snapshot.verify ~dir;
  Alcotest.(check string) "read back" "k,v\n1,one\n" (Snapshot.read_file ~dir "a.csv");
  (* corruption: one flipped byte fails verification, naming the file *)
  let path = Filename.concat dir "a.csv" in
  let orig = read_raw path in
  write_raw path (orig ^ "junk");
  Alcotest.(check bool) "size mismatch detected" true
    (try
       Snapshot.verify ~dir;
       false
     with Snapshot.Invalid m -> contains m "a.csv");
  let b = Bytes.of_string orig in
  Bytes.set b 0 'X';
  write_raw path (Bytes.to_string b);
  Alcotest.(check bool) "checksum mismatch detected" true
    (try
       Snapshot.verify ~dir;
       false
     with Snapshot.Invalid m -> contains m "checksum mismatch");
  Sys.remove path;
  Alcotest.(check bool) "missing file detected" true
    (try
       Snapshot.verify ~dir;
       false
     with Snapshot.Invalid m -> contains m "a.csv");
  rmrf dir

let test_snapshot_missing_member () =
  Sim_fs.reset ();
  let dir = tmpdir () in
  Snapshot.write ~dir [ ("a.csv", "x\n") ];
  Alcotest.(check bool) "read_file missing" true
    (try
       ignore (Snapshot.read_file ~dir "b.csv");
       false
     with Snapshot.Invalid m -> contains m "b.csv");
  rmrf dir

let test_generations () =
  Sim_fs.reset ();
  let root = tmpdir () in
  Sim_fs.mkdir root;
  Alcotest.(check bool) "no CURRENT yet" true (Snapshot.current root = None);
  Snapshot.set_current root 3;
  Alcotest.(check bool) "current" true (Snapshot.current root = Some 3);
  write_raw (Filename.concat root "CURRENT") "banana\n";
  Alcotest.(check bool) "unreadable CURRENT" true
    (try
       ignore (Snapshot.current root);
       false
     with Snapshot.Invalid _ -> true);
  Snapshot.set_current root 2;
  (* generation listing sees snapshot dirs and WAL files, committed or
     orphaned; prune keeps only the live one plus CURRENT *)
  Sim_fs.mkdir (Snapshot.snap_dir root 1);
  write_raw (Snapshot.wal_path root 1) "old";
  Sim_fs.mkdir (Snapshot.snap_dir root 2);
  write_raw (Snapshot.wal_path root 2) "live";
  Sim_fs.mkdir (Snapshot.snap_dir root 9);
  write_raw (Filename.concat root "snap-9.tmp") "leftover";
  Alcotest.(check (list int)) "generations" [ 1; 2; 9 ] (Snapshot.generations root);
  Snapshot.prune root ~keep:2;
  Alcotest.(check (list int)) "pruned" [ 2 ] (Snapshot.generations root);
  Alcotest.(check bool) "tmp leftovers gone" false
    (Sys.file_exists (Filename.concat root "snap-9.tmp"));
  Alcotest.(check bool) "live wal kept" true
    (Sys.file_exists (Snapshot.wal_path root 2));
  rmrf root

let test_snapshot_write_is_atomic () =
  (* A crash during [write] must never disturb the files already in
     place from an earlier snapshot of the same directory. *)
  Sim_fs.reset ();
  let dir = tmpdir () in
  Snapshot.write ~dir [ ("a.csv", "old\n") ];
  let before = read_raw (Filename.concat dir "a.csv") in
  Sim_fs.crash_after_ops 2;
  (* dies inside the tmp-file write of the replacement *)
  Alcotest.(check bool) "write crashes" true
    (try
       Snapshot.write ~dir [ ("a.csv", "newer contents\n") ];
       false
     with Sim_fs.Crash _ -> true);
  Sim_fs.reset ();
  Alcotest.(check string) "old file intact" before (read_raw (Filename.concat dir "a.csv"));
  Snapshot.verify ~dir;
  rmrf dir

let () =
  Alcotest.run "wal"
    [
      ("crc32", [ Alcotest.test_case "vectors" `Quick test_crc32 ]);
      ( "sim_fs",
        [
          Alcotest.test_case "op crash" `Quick test_sim_fs_op_crash;
          Alcotest.test_case "torn write" `Quick test_sim_fs_torn_write;
          Alcotest.test_case "fsync failure" `Quick test_sim_fs_fsync_failure;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip + layout" `Quick test_wal_roundtrip;
          Alcotest.test_case "patch frame roundtrip + revoke" `Quick
            test_wal_patch_roundtrip;
          Alcotest.test_case "rollback/close discard" `Quick
            test_wal_rollback_and_close_discard;
          Alcotest.test_case "empty commit" `Quick test_wal_empty_commit_is_noop;
          Alcotest.test_case "sync batching" `Quick test_wal_sync_batching;
          Alcotest.test_case "policy parse" `Quick test_wal_policy_parse;
        ] );
      ( "replay",
        [
          Alcotest.test_case "missing file" `Quick test_replay_missing_file;
          Alcotest.test_case "bad header" `Quick test_replay_bad_header;
          Alcotest.test_case "uncommitted tail" `Quick test_replay_uncommitted_tail;
          Alcotest.test_case "torn tail" `Quick test_replay_torn_tail;
          Alcotest.test_case "corrupt record" `Quick test_replay_corrupt_record;
          Alcotest.test_case "torn commit write" `Quick
            test_torn_commit_write_drops_statement;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "verify" `Quick test_snapshot_verify;
          Alcotest.test_case "missing member" `Quick test_snapshot_missing_member;
          Alcotest.test_case "generations" `Quick test_generations;
          Alcotest.test_case "atomic write" `Quick test_snapshot_write_is_atomic;
        ] );
    ]
